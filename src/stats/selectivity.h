#ifndef SPECQP_STATS_SELECTIVITY_H_
#define SPECQP_STATS_SELECTIVITY_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "query/query.h"
#include "rdf/triple_store.h"

namespace specqp {

// Join-cardinality estimation for the expected-score estimator
// (m12 = m · m' · φ12, section 3.1.2). The paper uses *exact* join
// selectivities (footnote 3); kIndependence is the classical
// 1/max(distinct) System-R estimate, kept as an ablation
// (bench/ablation_selectivity).
class SelectivityEstimator {
 public:
  enum class Mode {
    // Exact answer count of the full query (memoised backtracking join) —
    // the paper's setting: cardinalities are taken exactly.
    kExact,
    // Exact pairwise join counts chained left-deep with a conditional
    // independence assumption for 3+ patterns (ablation).
    kPairwiseExact,
    // Classical System-R estimate φ = Π_v 1/max(d_a(v), d_b(v)) (ablation).
    kIndependence,
  };

  explicit SelectivityEstimator(const TripleStore* store,
                                Mode mode = Mode::kExact);

  SelectivityEstimator(const SelectivityEstimator&) = delete;
  SelectivityEstimator& operator=(const SelectivityEstimator&) = delete;

  Mode mode() const { return mode_; }

  // Number of join results between two patterns joined on their shared
  // variables; a cross product when none are shared. Counts exactly (via a
  // two-sided group-count hash join in O(m_a + m_b)) unless the mode is
  // kIndependence.
  double JoinCardinality(const TriplePattern& a, const TriplePattern& b);

  // φ_ab = JoinCardinality / (m_a · m_b); 0 when either side is empty.
  double Selectivity(const TriplePattern& a, const TriplePattern& b);

  // Estimated answer count of the whole query (m12 = m·m'·φ chain, or the
  // memoised exact count under kExact).
  double QueryCardinality(const Query& query);

  // Exact answer count by full enumeration (memoised backtracking join,
  // cheapest-connected-pattern-first order).
  uint64_t ExactQueryCardinality(const Query& query);

  size_t memo_size() const { return pair_memo_.size() + query_memo_.size(); }

 private:
  double ExactPairCount(const TriplePattern& a, const TriplePattern& b);
  double IndependencePairCount(const TriplePattern& a, const TriplePattern& b);
  double ChainedQueryCardinality(const Query& query);

  const TripleStore* store_;
  Mode mode_;
  // Memo keys: textual encodings of the pattern keys + variable layout.
  std::unordered_map<std::string, double> pair_memo_;
  std::unordered_map<std::string, uint64_t> query_memo_;
};

}  // namespace specqp

#endif  // SPECQP_STATS_SELECTIVITY_H_
