#ifndef SPECQP_STATS_GRID_PDF_H_
#define SPECQP_STATS_GRID_PDF_H_

#include <cstddef>
#include <vector>

#include "stats/distribution.h"

namespace specqp {

// Numerically-gridded density: probability masses over uniform bins of
// width `delta` starting at 0. Supports repeated *exact-shape* convolution
// without the paper's two-bucket refit — the "multi-bucket histogram"
// alternative the paper mentions would improve estimates at higher planning
// cost (section 4.5.2). Used by the ablation benchmarks; the default
// planner path never touches this class.
class GridPdf final : public ScoreDistribution {
 public:
  // Discretises `dist` onto ceil(upper/delta) bins; bin mass is the exact
  // cdf difference over the bin.
  static GridPdf FromDistribution(const ScoreDistribution& dist, double delta);

  GridPdf(std::vector<double> masses, double delta);

  double upper() const override {
    return delta_ * static_cast<double>(masses_.size());
  }
  double delta() const { return delta_; }
  size_t bins() const { return masses_.size(); }

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double InverseCdf(double p) const override;
  double Mean() const override;
  double PartialExpectationAbove(double t) const override;

  // Discrete convolution of the bin masses; both inputs must share delta.
  // The result has a.bins() + b.bins() bins.
  static GridPdf Convolve(const GridPdf& a, const GridPdf& b);

 private:
  std::vector<double> masses_;     // sums to 1
  std::vector<double> cum_;        // cum_[i] = sum of masses_[0..i]
  double delta_;
};

}  // namespace specqp

#endif  // SPECQP_STATS_GRID_PDF_H_
