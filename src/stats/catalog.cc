#include "stats/catalog.h"

#include "util/logging.h"

namespace specqp {

TwoBucketHistogram PatternStats::Histogram() const {
  SPECQP_CHECK(!empty()) << "histogram of an empty pattern";
  return TwoBucketHistogram(sigma_r, s_r / s_m, /*upper=*/1.0);
}

StatisticsCatalog::StatisticsCatalog(const TripleStore* store,
                                     PostingListCache* postings,
                                     double head_fraction)
    : store_(store), postings_(postings), head_fraction_(head_fraction) {
  SPECQP_CHECK(store_ != nullptr && postings_ != nullptr);
  SPECQP_CHECK(head_fraction_ > 0.0 && head_fraction_ < 1.0);
}

const PatternStats& StatisticsCatalog::GetStats(const PatternKey& key) {
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  return cache_.emplace(key, Compute(key)).first->second;
}

PatternStats StatisticsCatalog::Compute(const PatternKey& key) {
  const auto list = postings_->Get(key);
  PatternStats stats;
  stats.m = list->size();
  if (list->empty()) return stats;

  double total = 0.0;
  for (const PostingEntry& e : list->entries) total += e.score;
  stats.s_m = total;
  if (total <= 0.0) return stats;

  double acc = 0.0;
  for (const PostingEntry& e : list->entries) {
    acc += e.score;
    if (acc >= head_fraction_ * total) {
      stats.sigma_r = e.score;
      stats.s_r = acc;
      return stats;
    }
  }
  // Fell through only via floating-point slack; use the full list.
  stats.sigma_r = list->entries.back().score;
  stats.s_r = acc;
  return stats;
}

}  // namespace specqp
