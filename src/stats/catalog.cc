#include "stats/catalog.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "util/logging.h"

namespace specqp {

TwoBucketHistogram PatternStats::Histogram() const {
  SPECQP_CHECK(!empty()) << "histogram of an empty pattern";
  return TwoBucketHistogram(sigma_r, s_r / s_m, /*upper=*/1.0);
}

StatisticsCatalog::StatisticsCatalog(const TripleStore* store,
                                     PostingListCache* postings,
                                     double head_fraction)
    : store_(store), postings_(postings), head_fraction_(head_fraction) {
  SPECQP_CHECK(store_ != nullptr && postings_ != nullptr);
  SPECQP_CHECK(head_fraction_ > 0.0 && head_fraction_ < 1.0);
}

const PatternStats& StatisticsCatalog::GetStats(const PatternKey& key) {
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  PatternStats stats = Compute(key);
  ApplyCorrection(key, &stats);
  return cache_.emplace(key, stats).first->second;
}

size_t StatisticsCatalog::LoadCalibration(const std::string& path) {
  return LoadCalibrationTable(path, &corrections_);
}

double StatisticsCatalog::CorrectionFor(const PatternKey& key) const {
  if (corrections_.empty()) return 1.0;
  const auto it = corrections_.find(PatternSignature(*store_, key));
  return it == corrections_.end() ? 1.0 : it->second;
}

void StatisticsCatalog::ApplyCorrection(const PatternKey& key,
                                        PatternStats* stats) const {
  if (corrections_.empty() || stats->m == 0) return;
  const double correction = CorrectionFor(key);
  if (correction == 1.0) return;
  stats->m = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::llround(static_cast<double>(stats->m) * correction)));
}

PatternStats StatisticsCatalog::Compute(const PatternKey& key) {
  const auto list = postings_->Get(key);
  PatternStats stats;
  stats.m = list->size();
  if (list->empty()) return stats;

  double total = 0.0;
  for (BlockIterator it(&*list); !it.AtEnd(); it.Advance()) {
    total += it.Entry().score;
  }
  stats.s_m = total;
  if (total <= 0.0) return stats;

  double acc = 0.0;
  double last_score = 0.0;
  for (BlockIterator it(&*list); !it.AtEnd(); it.Advance()) {
    last_score = it.Entry().score;
    acc += last_score;
    if (acc >= head_fraction_ * total) {
      stats.sigma_r = last_score;
      stats.s_r = acc;
      return stats;
    }
  }
  // Fell through only via floating-point slack; use the full list.
  stats.sigma_r = last_score;
  stats.s_r = acc;
  return stats;
}

std::vector<v2::StatsEntry> StatisticsCatalog::Snapshot() const {
  std::vector<v2::StatsEntry> rows;
  rows.reserve(cache_.size());
  for (const auto& [key, stats] : cache_) {
    rows.push_back(v2::StatsEntry{key.s, key.p, key.o, /*reserved=*/0,
                                  stats.m, stats.sigma_r, stats.s_r,
                                  stats.s_m});
  }
  std::sort(rows.begin(), rows.end(),
            [](const v2::StatsEntry& a, const v2::StatsEntry& b) {
              return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
            });
  return rows;
}

size_t StatisticsCatalog::Preload(std::span<const v2::StatsEntry> entries) {
  size_t inserted = 0;
  for (const v2::StatsEntry& row : entries) {
    PatternStats stats;
    stats.m = row.m;
    stats.sigma_r = row.sigma_r;
    stats.s_r = row.s_r;
    stats.s_m = row.s_m;
    const PatternKey key{row.s, row.p, row.o};
    // Corrections apply on the way in, so a catalog preloaded from a store
    // snapshot estimates like one that computed every entry itself.
    ApplyCorrection(key, &stats);
    inserted += cache_.emplace(key, stats).second ? 1 : 0;
  }
  return inserted;
}

}  // namespace specqp
