#include "stats/order_statistics.h"

#include "util/logging.h"

namespace specqp {

double ExpectedScoreAtRank(const ScoreDistribution& dist, double n,
                           uint64_t rank) {
  SPECQP_CHECK(rank >= 1);
  if (n < static_cast<double>(rank)) return 0.0;
  const double quantile = (n - static_cast<double>(rank) + 1.0) / (n + 1.0);
  return dist.InverseCdf(quantile);
}

}  // namespace specqp
