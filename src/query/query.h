#ifndef SPECQP_QUERY_QUERY_H_
#define SPECQP_QUERY_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple_pattern.h"
#include "util/result.h"

namespace specqp {

// A triple-pattern query (Definition 3): a conjunction of triple patterns
// sharing variables, plus a projection list. Variables are identified by
// dense VarIds local to the query; the query owns the VarId -> name table.
//
// Queries are value types: the planner copies them to build relaxed
// variants.
class Query {
 public:
  Query() = default;

  Query(const Query&) = default;
  Query& operator=(const Query&) = default;
  Query(Query&&) = default;
  Query& operator=(Query&&) = default;

  // Returns the VarId for `name` (without the leading '?'), registering it
  // on first use.
  VarId GetOrAddVariable(std::string_view name);

  [[nodiscard]] Result<VarId> FindVariable(std::string_view name) const;

  void AddPattern(const TriplePattern& pattern) {
    patterns_.push_back(pattern);
  }

  // Replaces pattern `index`; used when applying relaxation rules.
  void ReplacePattern(size_t index, const TriplePattern& pattern);

  void AddProjection(VarId v) { projection_.push_back(v); }

  const std::vector<TriplePattern>& patterns() const { return patterns_; }
  size_t num_patterns() const { return patterns_.size(); }
  const TriplePattern& pattern(size_t i) const { return patterns_[i]; }

  size_t num_vars() const { return var_names_.size(); }
  std::string_view var_name(VarId v) const;
  const std::vector<VarId>& projection() const { return projection_; }

  // Variables shared between pattern `i` and pattern `j` (the join key of
  // Definition 4's answer mapping).
  std::vector<VarId> SharedVars(size_t i, size_t j) const;

  // Variables shared between pattern `i` and any pattern in `others`
  // (indices into patterns()).
  std::vector<VarId> SharedVarsWithSet(size_t i,
                                       const std::vector<size_t>& others) const;

  // True iff every pattern is connected to the rest through shared
  // variables (no cross products).
  bool IsConnected() const;

  // SPARQL-ish rendering, e.g.
  //   SELECT ?s WHERE { ?s <rdf:type> <singer> . ?s <rdf:type> <pianist> }
  std::string ToString(const Dictionary& dict) const;

 private:
  std::vector<TriplePattern> patterns_;
  std::vector<std::string> var_names_;
  std::vector<VarId> projection_;
};

}  // namespace specqp

#endif  // SPECQP_QUERY_QUERY_H_
