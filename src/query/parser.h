#ifndef SPECQP_QUERY_PARSER_H_
#define SPECQP_QUERY_PARSER_H_

#include <string_view>

#include "query/query.h"
#include "rdf/dictionary.h"
#include "util/result.h"

namespace specqp {

struct ParseOptions {
  // When false (default), a constant term that is not in the dictionary is a
  // NOT_FOUND parse error — catching typos early. When true, unknown terms
  // are interned; the resulting pattern simply has an empty match set.
  bool intern_unknown_terms = false;
};

// Parses the SPARQL subset used throughout the paper:
//
//   SELECT ?s ?o WHERE {
//     ?s <rdf:type> <singer> .
//     ?s 'plays' ?o
//   }
//
// Grammar (case-insensitive keywords, '.' separates patterns, trailing '.'
// allowed):
//
//   query    := SELECT proj WHERE '{' pattern ('.' pattern)* '.'? '}'
//   proj     := '*' | var+
//   pattern  := term term term
//   term     := var | '<' chars '>' | quoted | bareword
//   var      := '?' ident
//
// Constants may be written <iri>, 'single-quoted', "double-quoted", or as
// bare words; the delimiters are stripped before dictionary lookup, so
// <singer> and 'singer' denote the same term.
[[nodiscard]] Result<Query> ParseQuery(std::string_view text, Dictionary* dict,
                         const ParseOptions& options = {});

// Read-only variant: unknown terms are parse errors and the dictionary is
// never mutated.
[[nodiscard]] Result<Query> ParseQuery(std::string_view text, const Dictionary& dict);

}  // namespace specqp

#endif  // SPECQP_QUERY_PARSER_H_
