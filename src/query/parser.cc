#include "query/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace specqp {

namespace {

enum class TokenType {
  kKeywordSelect,
  kKeywordWhere,
  kVariable,   // payload: name without '?'
  kConstant,   // payload: term text without delimiters
  kStar,
  kLBrace,
  kRBrace,
  kDot,
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;
  size_t offset;  // byte offset in the input, for error messages
};

bool IsBarewordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '#' || c == '-' || c == '/' || c == '@';
}

Status TokenizeError(std::string_view what, size_t offset) {
  return Status::InvalidArgument(
      StrFormat("parse error at byte %zu: %.*s", offset,
                static_cast<int>(what.size()), what.data()));
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '{') {
      tokens.push_back({TokenType::kLBrace, "{", i++});
      continue;
    }
    if (c == '}') {
      tokens.push_back({TokenType::kRBrace, "}", i++});
      continue;
    }
    if (c == '.') {
      tokens.push_back({TokenType::kDot, ".", i++});
      continue;
    }
    if (c == '*') {
      tokens.push_back({TokenType::kStar, "*", i++});
      continue;
    }
    if (c == '?') {
      const size_t start = ++i;
      while (i < n && IsBarewordChar(text[i])) ++i;
      if (i == start) return TokenizeError("empty variable name", start);
      tokens.push_back(
          {TokenType::kVariable, std::string(text.substr(start, i - start)),
           start - 1});
      continue;
    }
    if (c == '<') {
      const size_t start = ++i;
      while (i < n && text[i] != '>') ++i;
      if (i == n) return TokenizeError("unterminated '<'", start - 1);
      tokens.push_back(
          {TokenType::kConstant, std::string(text.substr(start, i - start)),
           start - 1});
      ++i;  // consume '>'
      continue;
    }
    if (c == '\'' || c == '"') {
      // Accept the ASCII quotes and the Unicode single quotes the paper's
      // typography uses (already normalised by the caller if needed).
      const char quote = c;
      const size_t start = ++i;
      while (i < n && text[i] != quote) ++i;
      if (i == n) return TokenizeError("unterminated quote", start - 1);
      tokens.push_back(
          {TokenType::kConstant, std::string(text.substr(start, i - start)),
           start - 1});
      ++i;
      continue;
    }
    if (IsBarewordChar(c)) {
      const size_t start = i;
      while (i < n && IsBarewordChar(text[i])) ++i;
      std::string word(text.substr(start, i - start));
      const std::string lower = AsciiToLower(word);
      if (lower == "select") {
        tokens.push_back({TokenType::kKeywordSelect, std::move(word), start});
      } else if (lower == "where") {
        tokens.push_back({TokenType::kKeywordWhere, std::move(word), start});
      } else {
        tokens.push_back({TokenType::kConstant, std::move(word), start});
      }
      continue;
    }
    return TokenizeError(StrFormat("unexpected character '%c'", c), i);
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, Dictionary* dict,
         const ParseOptions& options)
      : tokens_(std::move(tokens)), dict_(dict), options_(options) {}

  Result<Query> Parse() {
    Query query;

    SPECQP_RETURN_IF_ERROR(Expect(TokenType::kKeywordSelect, "SELECT"));

    // Projection: '*' or one or more variables.
    std::vector<std::string> proj_names;
    bool star = false;
    if (Peek().type == TokenType::kStar) {
      Advance();
      star = true;
    } else {
      while (Peek().type == TokenType::kVariable) {
        proj_names.push_back(Peek().text);
        Advance();
      }
      if (proj_names.empty()) {
        return Error("expected '*' or at least one ?variable after SELECT");
      }
    }

    SPECQP_RETURN_IF_ERROR(Expect(TokenType::kKeywordWhere, "WHERE"));
    SPECQP_RETURN_IF_ERROR(Expect(TokenType::kLBrace, "'{'"));

    // Patterns separated by '.', optional trailing '.'.
    while (true) {
      if (Peek().type == TokenType::kRBrace) break;
      TriplePattern pattern;
      SPECQP_ASSIGN_OR_RETURN(pattern.s, ParseTerm(&query));
      SPECQP_ASSIGN_OR_RETURN(pattern.p, ParseTerm(&query));
      SPECQP_ASSIGN_OR_RETURN(pattern.o, ParseTerm(&query));
      query.AddPattern(pattern);
      if (Peek().type == TokenType::kDot) {
        Advance();
        continue;
      }
      break;
    }

    SPECQP_RETURN_IF_ERROR(Expect(TokenType::kRBrace, "'}'"));
    if (Peek().type != TokenType::kEnd) {
      return Error("trailing input after '}'");
    }
    if (query.num_patterns() == 0) {
      return Error("query has no triple patterns");
    }

    // Resolve projection after all variables are registered so SELECT can
    // mention variables in any order.
    if (star) {
      for (VarId v = 0; v < query.num_vars(); ++v) query.AddProjection(v);
    } else {
      for (const std::string& name : proj_names) {
        SPECQP_ASSIGN_OR_RETURN(VarId v, query.FindVariable(name));
        query.AddProjection(v);
      }
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Error(std::string_view message) const {
    return Status::InvalidArgument(
        StrFormat("parse error at byte %zu: %.*s", Peek().offset,
                  static_cast<int>(message.size()), message.data()));
  }

  Status Expect(TokenType type, std::string_view what) {
    if (Peek().type != type) {
      return Error(StrFormat("expected %.*s", static_cast<int>(what.size()),
                             what.data()));
    }
    Advance();
    return Status::Ok();
  }

  Result<PatternTerm> ParseTerm(Query* query) {
    const Token& tok = Peek();
    if (tok.type == TokenType::kVariable) {
      const VarId v = query->GetOrAddVariable(tok.text);
      Advance();
      return PatternTerm::Var(v);
    }
    if (tok.type == TokenType::kConstant) {
      TermId id;
      if (options_.intern_unknown_terms) {
        id = dict_->Intern(tok.text);
      } else {
        auto found = dict_->Find(tok.text);
        if (!found.ok()) {
          return Error(StrFormat("unknown term '%s' (not in the knowledge "
                                 "graph's dictionary)",
                                 tok.text.c_str()));
        }
        id = found.value();
      }
      Advance();
      return PatternTerm::Const(id);
    }
    return Error("expected a ?variable or a constant term");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Dictionary* dict_;
  ParseOptions options_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text, Dictionary* dict,
                         const ParseOptions& options) {
  SPECQP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), dict, options);
  return parser.Parse();
}

Result<Query> ParseQuery(std::string_view text, const Dictionary& dict) {
  // With intern_unknown_terms == false the parser only calls Find(), so the
  // const_cast never results in mutation.
  ParseOptions options;
  options.intern_unknown_terms = false;
  return ParseQuery(text, const_cast<Dictionary*>(&dict), options);
}

}  // namespace specqp
