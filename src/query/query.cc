#include "query/query.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace specqp {

VarId Query::GetOrAddVariable(std::string_view name) {
  for (size_t i = 0; i < var_names_.size(); ++i) {
    if (var_names_[i] == name) return static_cast<VarId>(i);
  }
  SPECQP_CHECK(var_names_.size() < kInvalidVarId);
  var_names_.emplace_back(name);
  return static_cast<VarId>(var_names_.size() - 1);
}

Result<VarId> Query::FindVariable(std::string_view name) const {
  for (size_t i = 0; i < var_names_.size(); ++i) {
    if (var_names_[i] == name) return static_cast<VarId>(i);
  }
  return Status::NotFound(StrFormat("unknown variable '?%.*s'",
                                    static_cast<int>(name.size()),
                                    name.data()));
}

void Query::ReplacePattern(size_t index, const TriplePattern& pattern) {
  SPECQP_CHECK(index < patterns_.size());
  patterns_[index] = pattern;
}

std::string_view Query::var_name(VarId v) const {
  SPECQP_CHECK(v < var_names_.size());
  return var_names_[v];
}

std::vector<VarId> Query::SharedVars(size_t i, size_t j) const {
  SPECQP_CHECK(i < patterns_.size() && j < patterns_.size());
  VarId vi[3];
  VarId vj[3];
  const int ni = patterns_[i].Variables(vi);
  const int nj = patterns_[j].Variables(vj);
  std::vector<VarId> shared;
  for (int a = 0; a < ni; ++a) {
    for (int b = 0; b < nj; ++b) {
      if (vi[a] == vj[b]) shared.push_back(vi[a]);
    }
  }
  std::sort(shared.begin(), shared.end());
  return shared;
}

std::vector<VarId> Query::SharedVarsWithSet(
    size_t i, const std::vector<size_t>& others) const {
  VarId vi[3];
  const int ni = patterns_[i].Variables(vi);
  std::vector<VarId> shared;
  for (int a = 0; a < ni; ++a) {
    for (size_t j : others) {
      if (j == i) continue;
      if (patterns_[j].UsesVariable(vi[a])) {
        shared.push_back(vi[a]);
        break;
      }
    }
  }
  std::sort(shared.begin(), shared.end());
  shared.erase(std::unique(shared.begin(), shared.end()), shared.end());
  return shared;
}

bool Query::IsConnected() const {
  if (patterns_.size() <= 1) return true;
  std::vector<bool> reached(patterns_.size(), false);
  std::vector<size_t> frontier = {0};
  reached[0] = true;
  size_t count = 1;
  while (!frontier.empty()) {
    const size_t cur = frontier.back();
    frontier.pop_back();
    for (size_t j = 0; j < patterns_.size(); ++j) {
      if (reached[j]) continue;
      if (!SharedVars(cur, j).empty()) {
        reached[j] = true;
        ++count;
        frontier.push_back(j);
      }
    }
  }
  return count == patterns_.size();
}

std::string Query::ToString(const Dictionary& dict) const {
  std::string out = "SELECT";
  if (projection_.empty()) {
    out += " *";
  } else {
    for (VarId v : projection_) {
      out += " ?";
      out += var_name(v);
    }
  }
  out += " WHERE {";
  auto render = [&](const PatternTerm& t) -> std::string {
    if (t.is_variable()) {
      return StrFormat("?%.*s",
                       static_cast<int>(var_name(t.var()).size()),
                       var_name(t.var()).data());
    }
    std::string_view name = dict.Name(t.term());
    return StrFormat("<%.*s>", static_cast<int>(name.size()), name.data());
  };
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (i > 0) out += " .";
    out += " " + render(patterns_[i].s) + " " + render(patterns_[i].p) + " " +
           render(patterns_[i].o);
  }
  out += " }";
  return out;
}

}  // namespace specqp
