#ifndef SPECQP_UTIL_THREAD_ANNOTATIONS_H_
#define SPECQP_UTIL_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attribute macros (the Capability-system
// approach of "C/C++ Thread Safety Analysis", Hutchins et al.). Under
// Clang with -Wthread-safety these turn the locking comments that used to
// live in prose ("caller holds mu_", "guarded by shard.mu") into
// compile-time checked contracts; under GCC and MSVC every macro expands
// to nothing, so the portable build is unaffected.
//
// Conventions (see docs/STATIC_ANALYSIS.md for the full catalog):
//  - Every long-lived mutex member is a specqp::Mutex (util/mutex.h), the
//    annotated wrapper — std::mutex itself carries no capability attribute
//    and is invisible to the analysis. specqp_lint.py rule 4 enforces this.
//  - Data members touched only under a lock carry
//    SPECQP_GUARDED_BY(mu_); private helpers that assume the lock is
//    already held carry SPECQP_REQUIRES(mu_) instead of a `Locked` name
//    suffix alone.
//  - Deliberate lock-free fast paths (the fault injector's armed-flag
//    probe) are marked SPECQP_NO_THREAD_SAFETY_ANALYSIS with a comment
//    explaining the protocol that makes them safe.

#if defined(__clang__) && defined(__has_attribute)
#define SPECQP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SPECQP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

// Declares a type to be a capability ("mutex") the analysis can track.
#define SPECQP_CAPABILITY(x) \
  SPECQP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Declares an RAII type whose lifetime acquires/releases a capability.
#define SPECQP_SCOPED_CAPABILITY \
  SPECQP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Data member may only be read or written while holding `x`.
#define SPECQP_GUARDED_BY(x) SPECQP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Pointer member: the *pointed-to* data is protected by `x`.
#define SPECQP_PT_GUARDED_BY(x) \
  SPECQP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Function requires the listed capabilities to be held on entry (and does
// not release them). This replaces the old `FooLocked()` naming-only
// convention with a checked contract.
#define SPECQP_REQUIRES(...) \
  SPECQP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// Function requires the capabilities NOT to be held on entry (deadlock
// guard for public entry points that take the lock themselves).
#define SPECQP_EXCLUDES(...) \
  SPECQP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Function acquires / releases the capability.
#define SPECQP_ACQUIRE(...) \
  SPECQP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define SPECQP_RELEASE(...) \
  SPECQP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// Function tries to acquire the capability; returns `b` on success.
#define SPECQP_TRY_ACQUIRE(b, ...) \
  SPECQP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(b, __VA_ARGS__))

// Lock ordering: this capability must be acquired after the listed ones.
#define SPECQP_ACQUIRED_AFTER(...) \
  SPECQP_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define SPECQP_ACQUIRED_BEFORE(...) \
  SPECQP_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

// Return value is a reference to the named capability (used by raw()).
#define SPECQP_RETURN_CAPABILITY(x) \
  SPECQP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Opts a function out of the analysis entirely. Every use must carry a
// comment justifying why the unchecked access is safe.
#define SPECQP_NO_THREAD_SAFETY_ANALYSIS \
  SPECQP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // SPECQP_UTIL_THREAD_ANNOTATIONS_H_
