#ifndef SPECQP_UTIL_STOP_PROBE_H_
#define SPECQP_UTIL_STOP_PROBE_H_

namespace specqp {

// A thread-local, type-erased "should this work stop?" probe.
//
// Long store-layer operations (the ShardedStore scatter-gather merge,
// posting-list builds) want to honour query cancellation, but the rdf
// layer sits below topk and cannot see ExecInterrupt. The engine instead
// installs a probe for the duration of query execution; store code polls
// StopRequested() at its natural checkpoints and bails out early with an
// empty (never memoised) result when it returns true.
//
// With no probe installed — index build, tools, benches — StopRequested()
// is a null check returning false.
using StopProbeFn = bool (*)(const void* ctx);

// [[nodiscard]] on the class: constructing-and-discarding the guard
// (`ScopedStopProbe(fn, ctx);`) installs and immediately removes the
// probe, which is never what the caller meant.
class [[nodiscard]] ScopedStopProbe {
 public:
  // Installs `fn(ctx)` as this thread's probe, remembering the previous
  // one (probes nest across re-entrant execution).
  ScopedStopProbe(StopProbeFn fn, const void* ctx);
  ~ScopedStopProbe();

  ScopedStopProbe(const ScopedStopProbe&) = delete;
  ScopedStopProbe& operator=(const ScopedStopProbe&) = delete;

  // True when the current thread's installed probe reports a stop.
  static bool StopRequested();

 private:
  StopProbeFn prev_fn_;
  const void* prev_ctx_;
};

}  // namespace specqp

#endif  // SPECQP_UTIL_STOP_PROBE_H_
