#ifndef SPECQP_UTIL_FAULT_INJECTOR_H_
#define SPECQP_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/status.h"

namespace specqp {

// Process-wide deterministic fault injection.
//
// Code that touches failure-prone resources declares a *fault site* — a short
// dotted identifier such as "shard.open", "shard.read", "block.decode",
// "cache.alloc", "store.open" — and probes it on the failure-prone path:
//
//   if (FaultShouldFail("shard.open", shard_index)) {
//     return Status::IoError("injected fault: shard.open");
//   }
//
// Whether a probe fires is decided by a *fault plan*, a semicolon-separated
// list of `site=spec` entries plus an optional seed:
//
//   "seed=42;shard.open=0.5;block.decode=0.01"   // probabilistic
//   "shard.open.3=1"                             // shard 3 always fails
//   "shard.open=1@2"                             // first two probes fail,
//                                                // later ones succeed
//
// A spec is `<probability>` in [0,1], optionally followed by `@<max_fires>`
// capping the total number of times the site may fire. Instance-qualified
// probes (`FaultShouldFail(site, i)`) first look up "<site>.<i>" and fall
// back to the bare site, so a plan can target one shard or all of them.
//
// Decisions are a pure function of (seed, site, per-site probe counter), so a
// given plan replays the identical fault schedule on every run — including
// across processes — as long as the probe order is deterministic. Probe
// counters are per-site atomics, so under multi-threaded execution the
// *number* of fires converges but their assignment to threads may vary; the
// chaos harness relies only on the former.
//
// With no plan configured the injector is disarmed and every probe is a
// single relaxed atomic load plus an untaken branch — cheap enough to leave
// in release builds (verified by the micro_operators overhead check).
//
// Configuration is NOT thread-safe with respect to in-flight probes:
// configure before serving (Engine::OpenFromPath does this from
// EngineOptions::fault_plan) or between queries in tests.
class FaultInjector {
 public:
  // The process-wide injector. First access reads SPECQP_FAULT_PLAN from the
  // environment (a malformed env plan is ignored with a warning so that a
  // typo cannot make every binary unusable).
  static FaultInjector& Global();

  // Parses and installs `plan`; an empty plan disarms the injector. On a
  // parse error the previous plan is left untouched. Resets all counters.
  Status Configure(std::string_view plan);

  // Removes the active plan; probes return to the no-op fast path.
  void Disarm();

  bool armed() const;
  // The currently installed plan string (empty when disarmed).
  std::string plan() const;

  // Decides whether the probe at `site` fires now. Called via the
  // FaultShouldFail free functions below, which handle the disarmed fast
  // path; calling Probe directly skips that fast path.
  bool Probe(std::string_view site);
  // Instance-qualified probe: tries "<site>.<instance>" first, then `site`.
  bool Probe(std::string_view site, uint64_t instance);

  // Observability for tests and benches. Counts are cumulative since the
  // last Configure()/ResetCounters(). An unknown site reads as zero.
  uint64_t FireCount(std::string_view site) const;
  uint64_t ProbeCount(std::string_view site) const;
  void ResetCounters();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  FaultInjector();

  struct Site {
    double probability = 0.0;
    uint64_t max_fires = ~0ull;
    uint64_t key_hash = 0;  // hash of the site name, for the fire decision
    std::atomic<uint64_t> probes{0};
    std::atomic<uint64_t> fires{0};
  };

  bool ProbeSite(Site* site) const;

  mutable std::mutex mutex_;  // guards plan_ / seed_ / sites_ mutation
  std::string plan_;
  uint64_t seed_ = 0;
  // Heap-allocated Sites so lookups can hand out stable pointers; the map
  // itself is only mutated under mutex_ in Configure (probes happen-after
  // the armed release-store, see fault_internal::g_fault_armed).
  std::unordered_map<std::string, std::unique_ptr<Site>> sites_;
};

namespace fault_internal {
// Hot-path armed flag, separate from the singleton so the disarmed check
// never pays the Global() magic-static guard. Store with release in
// Configure/Disarm; load with acquire in probes so a probe that observes
// armed==true also observes the fully-built site map.
extern std::atomic<bool> g_fault_armed;
}  // namespace fault_internal

// Returns true when the active fault plan says the probe at `site` fires.
// Disarmed cost: one relaxed-ish atomic load and an untaken branch.
inline bool FaultShouldFail(std::string_view site) {
  if (!fault_internal::g_fault_armed.load(std::memory_order_acquire)) {
    return false;
  }
  return FaultInjector::Global().Probe(site);
}

inline bool FaultShouldFail(std::string_view site, uint64_t instance) {
  if (!fault_internal::g_fault_armed.load(std::memory_order_acquire)) {
    return false;
  }
  return FaultInjector::Global().Probe(site, instance);
}

// Test helper: installs `plan` for the lifetime of the scope, restoring the
// previously active plan (including "no plan") on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(std::string_view plan);
  ~ScopedFaultPlan();

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

 private:
  std::string previous_;
};

}  // namespace specqp

#endif  // SPECQP_UTIL_FAULT_INJECTOR_H_
