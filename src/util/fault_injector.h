#ifndef SPECQP_UTIL_FAULT_INJECTOR_H_
#define SPECQP_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace specqp {

// Registry of every fault site the tree probes. A site string used with
// FaultShouldFail anywhere under src/ MUST appear here (enforced by
// scripts/specqp_lint.py rule 2), so a fault plan cannot silently name a
// site that no longer exists — and the chaos harness can enumerate every
// injection point without grepping.
inline constexpr std::string_view kFaultSiteRegistry[] = {
    "store.open",    // store_io.cc / mmap_store.cc: opening a store file
    "shard.open",    // sharded_store.cc: opening one shard of a bundle
    "shard.read",    // sharded_store.cc: per-shard scatter-gather read
    "block.decode",  // posting_blocks.cc: decoding one compressed block
    "cache.alloc",   // posting_list.cc: posting-list build/cache insert
};

// True when `site` is registered in kFaultSiteRegistry.
constexpr bool IsRegisteredFaultSite(std::string_view site) {
  for (std::string_view s : kFaultSiteRegistry) {
    if (s == site) return true;
  }
  return false;
}

// Process-wide deterministic fault injection.
//
// Code that touches failure-prone resources declares a *fault site* — a short
// dotted identifier such as "shard.open", "shard.read", "block.decode",
// "cache.alloc", "store.open" — and probes it on the failure-prone path:
//
//   if (FaultShouldFail("shard.open", shard_index)) {
//     return Status::IoError("injected fault: shard.open");
//   }
//
// Whether a probe fires is decided by a *fault plan*, a semicolon-separated
// list of `site=spec` entries plus an optional seed:
//
//   "seed=42;shard.open=0.5;block.decode=0.01"   // probabilistic
//   "shard.open.3=1"                             // shard 3 always fails
//   "shard.open=1@2"                             // first two probes fail,
//                                                // later ones succeed
//
// A spec is `<probability>` in [0,1], optionally followed by `@<max_fires>`
// capping the total number of times the site may fire. Instance-qualified
// probes (`FaultShouldFail(site, i)`) first look up "<site>.<i>" and fall
// back to the bare site, so a plan can target one shard or all of them.
//
// Decisions are a pure function of (seed, site, per-site probe counter), so a
// given plan replays the identical fault schedule on every run — including
// across processes — as long as the probe order is deterministic. Probe
// counters are per-site atomics, so under multi-threaded execution the
// *number* of fires converges but their assignment to threads may vary; the
// chaos harness relies only on the former.
//
// With no plan configured the injector is disarmed and every probe is a
// single relaxed atomic load plus an untaken branch — cheap enough to leave
// in release builds (verified by the micro_operators overhead check).
//
// Configuration is NOT thread-safe with respect to in-flight probes:
// configure before serving (Engine::OpenFromPath does this from
// EngineOptions::fault_plan) or between queries in tests.
class FaultInjector {
 public:
  // The process-wide injector. First access reads SPECQP_FAULT_PLAN from the
  // environment (a malformed env plan is ignored with a warning so that a
  // typo cannot make every binary unusable).
  static FaultInjector& Global();

  // Parses and installs `plan`; an empty plan disarms the injector. On a
  // parse error the previous plan is left untouched. Resets all counters.
  [[nodiscard]] Status Configure(std::string_view plan);

  // Removes the active plan; probes return to the no-op fast path.
  void Disarm();

  bool armed() const;
  // The currently installed plan string (empty when disarmed).
  std::string plan() const;

  // Decides whether the probe at `site` fires now. Called via the
  // FaultShouldFail free functions below, which handle the disarmed fast
  // path; calling Probe directly skips that fast path.
  //
  // Deliberately lock-free: probes read sites_/seed_ without mutex_. Safe
  // because the map is only mutated in Configure/Disarm, which are
  // documented not to run concurrently with probes, and a probe that
  // observes g_fault_armed==true happens-after the release-store that
  // published the fully-built map. The thread-safety analysis cannot see
  // that protocol, so these two are opted out.
  bool Probe(std::string_view site) SPECQP_NO_THREAD_SAFETY_ANALYSIS;
  // Instance-qualified probe: tries "<site>.<instance>" first, then `site`.
  bool Probe(std::string_view site,
             uint64_t instance) SPECQP_NO_THREAD_SAFETY_ANALYSIS;

  // Observability for tests and benches. Counts are cumulative since the
  // last Configure()/ResetCounters(). An unknown site reads as zero.
  uint64_t FireCount(std::string_view site) const;
  uint64_t ProbeCount(std::string_view site) const;
  void ResetCounters();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  FaultInjector();

  struct Site {
    double probability = 0.0;
    uint64_t max_fires = ~0ull;
    uint64_t key_hash = 0;  // hash of the site name, for the fire decision
    std::atomic<uint64_t> probes{0};
    std::atomic<uint64_t> fires{0};
  };

  // Same armed-flag protocol as Probe: reads seed_ without the lock.
  bool ProbeSite(Site* site) const SPECQP_NO_THREAD_SAFETY_ANALYSIS;

  mutable Mutex mutex_;  // guards plan_ / seed_ / sites_ mutation
  std::string plan_ SPECQP_GUARDED_BY(mutex_);
  uint64_t seed_ SPECQP_GUARDED_BY(mutex_) = 0;
  // Heap-allocated Sites so lookups can hand out stable pointers; the map
  // itself is only mutated under mutex_ in Configure (probes happen-after
  // the armed release-store, see fault_internal::g_fault_armed).
  std::unordered_map<std::string, std::unique_ptr<Site>> sites_
      SPECQP_GUARDED_BY(mutex_);
};

namespace fault_internal {
// Hot-path armed flag, separate from the singleton so the disarmed check
// never pays the Global() magic-static guard. Store with release in
// Configure/Disarm; load with acquire in probes so a probe that observes
// armed==true also observes the fully-built site map.
extern std::atomic<bool> g_fault_armed;
}  // namespace fault_internal

// Returns true when the active fault plan says the probe at `site` fires.
// Disarmed cost: one relaxed-ish atomic load and an untaken branch.
inline bool FaultShouldFail(std::string_view site) {
  if (!fault_internal::g_fault_armed.load(std::memory_order_acquire)) {
    return false;
  }
  return FaultInjector::Global().Probe(site);
}

inline bool FaultShouldFail(std::string_view site, uint64_t instance) {
  if (!fault_internal::g_fault_armed.load(std::memory_order_acquire)) {
    return false;
  }
  return FaultInjector::Global().Probe(site, instance);
}

// Test helper: installs `plan` for the lifetime of the scope, restoring the
// previously active plan (including "no plan") on destruction. [[nodiscard]]
// so `ScopedFaultPlan("...");` — a guard that dies immediately, arming
// nothing — is a compile-time warning instead of a silent no-op.
class [[nodiscard]] ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(std::string_view plan);
  ~ScopedFaultPlan();

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

 private:
  std::string previous_;
};

}  // namespace specqp

#endif  // SPECQP_UTIL_FAULT_INJECTOR_H_
