#ifndef SPECQP_UTIL_CRC32_H_
#define SPECQP_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace specqp {

// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) over a byte span; used to
// protect the sections of the on-disk store format against corruption.
// `seed` allows incremental computation: Crc32c(b, n2, Crc32c(a, n1)).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace specqp

#endif  // SPECQP_UTIL_CRC32_H_
