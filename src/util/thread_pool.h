#ifndef SPECQP_UTIL_THREAD_POOL_H_
#define SPECQP_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace specqp {

// Fixed-size fork-join worker pool used by the parallel execution layer.
//
// The only entry point is RunAndWait(): the caller hands over a batch of
// independent tasks and blocks until every task has finished. Tasks are
// claimed one at a time by the workers *and by the calling thread*, so a
// pool with W workers runs W+1 tasks concurrently and a pool with zero
// workers degrades to running the batch inline. The mutex/condvar handoff
// establishes a happens-before edge between each task's effects and the
// caller's resumption, so task outputs written to disjoint slots need no
// additional synchronisation.
//
// Batches from several callers may be in flight at once (the queue holds
// any number of batches); tasks of one batch never wait on another batch,
// which keeps RunAndWait deadlock-free as long as tasks themselves do not
// block on pool-scheduled work.
class ThreadPool {
 public:
  // Spawns `num_workers` threads (0 is valid: everything runs inline).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  // Runs every task in `tasks` and returns once all have completed. The
  // vector must stay alive for the duration of the call (it is not copied).
  void RunAndWait(std::vector<std::function<void()>>* tasks);

  // std::thread::hardware_concurrency with a sane floor of 1.
  static size_t HardwareConcurrency();

 private:
  struct Batch {
    std::vector<std::function<void()>>* tasks;
    // next/done are guarded by the pool's mu_ too, but a nested struct
    // cannot name the outer class's member in a guarded_by attribute, so
    // the contract is enforced at the access sites instead (all of which
    // live in functions the analysis sees holding mu_).
    size_t next = 0;  // next unclaimed task index
    size_t done = 0;  // completed task count
  };

  void WorkerLoop();
  // Pops `batch` from queue_ if still enqueued.
  void RemoveFromQueue(Batch* batch) SPECQP_REQUIRES(mu_);

  Mutex mu_;
  CondVar work_cv_;  // workers wait for batches
  CondVar done_cv_;  // callers wait for batch completion
  std::deque<Batch*> queue_ SPECQP_GUARDED_BY(mu_);
  bool stop_ SPECQP_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace specqp

#endif  // SPECQP_UTIL_THREAD_POOL_H_
