#ifndef SPECQP_UTIL_ZIPF_H_
#define SPECQP_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace specqp {

// Samples ranks in [0, n) from a Zipf(s) distribution:
// P(rank = i) proportional to 1 / (i + 1)^s.
//
// The paper's score model rests on power-law-distributed triple scores
// (the 80/20 observation behind the two-bucket histogram, section 3.1.1);
// both dataset generators use this sampler for entity popularity, tag
// frequency, retweet counts, and inlink counts.
//
// Implementation: precomputed cumulative table + binary search. O(n) memory,
// O(log n) per sample, exact (no rejection), deterministic given the Rng.
class ZipfDistribution {
 public:
  // n must be >= 1; s >= 0 (s == 0 is uniform).
  ZipfDistribution(uint64_t n, double s);

  uint64_t Sample(Rng* rng) const;

  // P(rank = i).
  double Pmf(uint64_t i) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

// Returns a vector of n power-law "scores": score(i) = scale / (i+1)^s,
// descending; handy for assigning raw triple scores by popularity rank.
std::vector<double> PowerLawScores(uint64_t n, double s, double scale);

}  // namespace specqp

#endif  // SPECQP_UTIL_ZIPF_H_
