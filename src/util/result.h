#ifndef SPECQP_UTIL_RESULT_H_
#define SPECQP_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace specqp {

// Result<T> holds either a value of type T or a non-OK Status, mirroring
// absl::StatusOr. Accessing the value of an errored Result aborts (program
// logic error); callers must check ok() first or use value_or().
// [[nodiscard]] for the same reason as Status: a dropped Result is a
// dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit, so functions returning Result<T> can
  // `return value;` and `return SomeStatus;` symmetrically.
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    SPECQP_CHECK(!std::get<Status>(state_).ok())
        << "Result<T> constructed from OK status without a value";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk = Status::Ok();
    if (ok()) return kOk;
    return std::get<Status>(state_);
  }

  const T& value() const& {
    SPECQP_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(state_);
  }
  T& value() & {
    SPECQP_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(state_);
  }
  T&& value() && {
    SPECQP_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(state_));
  }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace specqp

// Evaluates `expr` (a Result<T>), propagates its error, otherwise moves the
// value into `lhs`. `lhs` may include a declaration: SPECQP_ASSIGN_OR_RETURN(
// auto x, Foo());
#define SPECQP_ASSIGN_OR_RETURN(lhs, expr)                      \
  SPECQP_ASSIGN_OR_RETURN_IMPL_(                                \
      SPECQP_RESULT_CONCAT_(_specqp_result, __LINE__), lhs, expr)

#define SPECQP_RESULT_CONCAT_INNER_(a, b) a##b
#define SPECQP_RESULT_CONCAT_(a, b) SPECQP_RESULT_CONCAT_INNER_(a, b)

#define SPECQP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // SPECQP_UTIL_RESULT_H_
