#include "util/random.h"

#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace specqp {

namespace {

// SplitMix64: seeds the xoshiro state so that nearby seeds produce unrelated
// streams.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SPECQP_DCHECK(bound > 0);
  // Lemire's method: multiply-and-shift with rejection in the biased zone.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SPECQP_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; uses one pair per call (simple, allocation-free).
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  SPECQP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SPECQP_DCHECK(w >= 0.0);
    total += w;
  }
  SPECQP_CHECK(total > 0.0) << "NextWeighted requires a positive weight sum";
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // floating-point slack
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace specqp
