#ifndef SPECQP_UTIL_STRING_UTIL_H_
#define SPECQP_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace specqp {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Splits on a single separator character; empty pieces are kept.
std::vector<std::string_view> StrSplit(std::string_view s, char sep);

// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

// Joins pieces with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Locale-independent ASCII lowercase copy.
std::string AsciiToLower(std::string_view s);

// Formats a double compactly ("0.8", "12.25") for table output.
std::string DoubleToString(double v, int precision = 4);

}  // namespace specqp

#endif  // SPECQP_UTIL_STRING_UTIL_H_
