#include "util/stop_probe.h"

namespace specqp {

namespace {
thread_local StopProbeFn t_probe_fn = nullptr;
thread_local const void* t_probe_ctx = nullptr;
}  // namespace

ScopedStopProbe::ScopedStopProbe(StopProbeFn fn, const void* ctx)
    : prev_fn_(t_probe_fn), prev_ctx_(t_probe_ctx) {
  t_probe_fn = fn;
  t_probe_ctx = ctx;
}

ScopedStopProbe::~ScopedStopProbe() {
  t_probe_fn = prev_fn_;
  t_probe_ctx = prev_ctx_;
}

bool ScopedStopProbe::StopRequested() {
  return t_probe_fn != nullptr && t_probe_fn(t_probe_ctx);
}

}  // namespace specqp
