#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace specqp {

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SPECQP_CHECK(queue_.empty()) << "ThreadPool destroyed with work in flight";
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::RemoveFromQueue(Batch* batch) {
  auto it = std::find(queue_.begin(), queue_.end(), batch);
  if (it != queue_.end()) queue_.erase(it);
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    Batch* batch = queue_.front();
    if (batch->next >= batch->tasks->size()) {
      // Fully claimed (stragglers may still be running); stop advertising.
      queue_.pop_front();
      continue;
    }
    const size_t index = batch->next++;
    if (batch->next >= batch->tasks->size()) RemoveFromQueue(batch);
    lock.unlock();
    (*batch->tasks)[index]();
    lock.lock();
    if (++batch->done == batch->tasks->size()) done_cv_.notify_all();
  }
}

void ThreadPool::RunAndWait(std::vector<std::function<void()>>* tasks) {
  SPECQP_CHECK(tasks != nullptr);
  if (tasks->empty()) return;
  if (workers_.empty() || tasks->size() == 1) {
    for (auto& task : *tasks) task();
    return;
  }

  Batch batch{tasks};
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(&batch);
  }
  work_cv_.notify_all();

  // The caller claims tasks too, so the batch makes progress even when all
  // workers are busy with other batches.
  std::unique_lock<std::mutex> lock(mu_);
  while (batch.next < tasks->size()) {
    const size_t index = batch.next++;
    if (batch.next >= tasks->size()) RemoveFromQueue(&batch);
    lock.unlock();
    (*tasks)[index]();
    lock.lock();
    ++batch.done;
  }
  done_cv_.wait(lock, [&] { return batch.done == tasks->size(); });
  // `batch` goes out of scope on return; it must not linger in the queue.
  RemoveFromQueue(&batch);
}

}  // namespace specqp
