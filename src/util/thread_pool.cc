#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace specqp {

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    SPECQP_CHECK(queue_.empty()) << "ThreadPool destroyed with work in flight";
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::RemoveFromQueue(Batch* batch) {
  auto it = std::find(queue_.begin(), queue_.end(), batch);
  if (it != queue_.end()) queue_.erase(it);
}

void ThreadPool::WorkerLoop() {
  // Explicit Lock/Unlock (not unique_lock) so the analysis can follow the
  // lock being dropped around task execution and re-taken for bookkeeping.
  mu_.Lock();
  while (true) {
    while (!stop_ && queue_.empty()) work_cv_.Wait(mu_);
    if (stop_) break;
    Batch* batch = queue_.front();
    if (batch->next >= batch->tasks->size()) {
      // Fully claimed (stragglers may still be running); stop advertising.
      queue_.pop_front();
      continue;
    }
    const size_t index = batch->next++;
    if (batch->next >= batch->tasks->size()) RemoveFromQueue(batch);
    mu_.Unlock();
    (*batch->tasks)[index]();
    mu_.Lock();
    if (++batch->done == batch->tasks->size()) done_cv_.NotifyAll();
  }
  mu_.Unlock();
}

void ThreadPool::RunAndWait(std::vector<std::function<void()>>* tasks) {
  SPECQP_CHECK(tasks != nullptr);
  if (tasks->empty()) return;
  if (workers_.empty() || tasks->size() == 1) {
    for (auto& task : *tasks) task();
    return;
  }

  Batch batch{tasks};
  {
    MutexLock lock(mu_);
    queue_.push_back(&batch);
  }
  work_cv_.NotifyAll();

  // The caller claims tasks too, so the batch makes progress even when all
  // workers are busy with other batches.
  mu_.Lock();
  while (batch.next < tasks->size()) {
    const size_t index = batch.next++;
    if (batch.next >= tasks->size()) RemoveFromQueue(&batch);
    mu_.Unlock();
    (*tasks)[index]();
    mu_.Lock();
    ++batch.done;
  }
  while (batch.done < tasks->size()) done_cv_.Wait(mu_);
  // `batch` goes out of scope on return; it must not linger in the queue.
  RemoveFromQueue(&batch);
  mu_.Unlock();
}

}  // namespace specqp
