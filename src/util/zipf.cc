#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace specqp {

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  SPECQP_CHECK(n >= 1);
  SPECQP_CHECK(s >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  const double total = acc;
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding drift
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint64_t i) const {
  SPECQP_CHECK(i < n_);
  const double lo = (i == 0) ? 0.0 : cdf_[i - 1];
  return cdf_[i] - lo;
}

std::vector<double> PowerLawScores(uint64_t n, double s, double scale) {
  std::vector<double> out(n);
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = scale / std::pow(static_cast<double>(i + 1), s);
  }
  return out;
}

}  // namespace specqp
