#include "util/status.h"

namespace specqp {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace specqp
