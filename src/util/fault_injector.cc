#include "util/fault_injector.h"

#include <cstdlib>
#include <limits>

#include "util/logging.h"
#include "util/string_util.h"

namespace specqp {

namespace fault_internal {
std::atomic<bool> g_fault_armed{false};
}  // namespace fault_internal

namespace {

// splitmix64 finalizer: a full-avalanche 64-bit mix. The fire decision is
// Mix(seed ^ site-hash ^ probe-index) compared against the probability
// threshold, making every decision a pure function of the plan and the
// per-site probe counter.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashSite(std::string_view site) {
  uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (std::numeric_limits<uint64_t>::max() - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

bool ParseProbability(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;
  *out = v;
  return true;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

FaultInjector::FaultInjector() {
  const char* env = std::getenv("SPECQP_FAULT_PLAN");
  if (env != nullptr && env[0] != '\0') {
    Status s = Configure(env);
    if (!s.ok()) {
      SPECQP_LOG(Warning) << "ignoring malformed SPECQP_FAULT_PLAN: "
                          << s.ToString();
    }
  }
}

Status FaultInjector::Configure(std::string_view plan) {
  uint64_t seed = 0;
  std::unordered_map<std::string, std::unique_ptr<Site>> sites;
  for (std::string_view piece : StrSplit(plan, ';')) {
    piece = StripWhitespace(piece);
    if (piece.empty()) continue;
    const size_t eq = piece.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument(
          StrFormat("fault plan entry '%.*s' is not site=spec",
                    static_cast<int>(piece.size()), piece.data()));
    }
    std::string_view key = StripWhitespace(piece.substr(0, eq));
    std::string_view value = StripWhitespace(piece.substr(eq + 1));
    if (key == "seed") {
      if (!ParseUint64(value, &seed)) {
        return Status::InvalidArgument(
            StrFormat("fault plan seed '%.*s' is not a uint64",
                      static_cast<int>(value.size()), value.data()));
      }
      continue;
    }
    auto site = std::make_unique<Site>();
    std::string_view prob = value;
    const size_t at = value.find('@');
    if (at != std::string_view::npos) {
      prob = value.substr(0, at);
      if (!ParseUint64(value.substr(at + 1), &site->max_fires)) {
        return Status::InvalidArgument(
            StrFormat("fault plan cap '%.*s' is not a uint64",
                      static_cast<int>(value.size()), value.data()));
      }
    }
    if (!ParseProbability(prob, &site->probability)) {
      return Status::InvalidArgument(
          StrFormat("fault plan probability '%.*s' for site '%.*s' is not "
                    "in [0,1]",
                    static_cast<int>(prob.size()), prob.data(),
                    static_cast<int>(key.size()), key.data()));
    }
    site->key_hash = HashSite(key);
    sites[std::string(key)] = std::move(site);
  }

  // Disarm first so no probe walks the map while we swap it. Callers must
  // not configure concurrently with probes (documented contract); this
  // ordering just keeps the single-configurator case airtight. Decide
  // arming from the local map before it is moved: reading sites_ after the
  // lock is released would race with a concurrent Configure.
  const bool arm = !sites.empty();
  fault_internal::g_fault_armed.store(false, std::memory_order_release);
  {
    MutexLock lock(mutex_);
    plan_ = std::string(StripWhitespace(plan));
    seed_ = seed;
    sites_ = std::move(sites);
  }
  if (arm) {
    fault_internal::g_fault_armed.store(true, std::memory_order_release);
  }
  return Status::Ok();
}

void FaultInjector::Disarm() {
  fault_internal::g_fault_armed.store(false, std::memory_order_release);
  MutexLock lock(mutex_);
  plan_.clear();
  seed_ = 0;
  sites_.clear();
}

bool FaultInjector::armed() const {
  return fault_internal::g_fault_armed.load(std::memory_order_acquire);
}

std::string FaultInjector::plan() const {
  MutexLock lock(mutex_);
  return plan_;
}

bool FaultInjector::ProbeSite(Site* site) const {
  const uint64_t index = site->probes.fetch_add(1, std::memory_order_relaxed);
  if (site->fires.load(std::memory_order_relaxed) >= site->max_fires) {
    return false;
  }
  bool fire;
  if (site->probability >= 1.0) {
    fire = true;
  } else if (site->probability <= 0.0) {
    fire = false;
  } else {
    const uint64_t h = Mix(seed_ ^ site->key_hash ^ Mix(index));
    fire = static_cast<double>(h) <
           site->probability *
               static_cast<double>(std::numeric_limits<uint64_t>::max());
  }
  if (!fire) return false;
  const uint64_t prev = site->fires.fetch_add(1, std::memory_order_relaxed);
  return prev < site->max_fires;
}

bool FaultInjector::Probe(std::string_view site) {
  auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return false;
  return ProbeSite(it->second.get());
}

bool FaultInjector::Probe(std::string_view site, uint64_t instance) {
  std::string qualified =
      StrFormat("%.*s.%llu", static_cast<int>(site.size()), site.data(),
                static_cast<unsigned long long>(instance));
  auto it = sites_.find(qualified);
  if (it != sites_.end()) return ProbeSite(it->second.get());
  return Probe(site);
}

uint64_t FaultInjector::FireCount(std::string_view site) const {
  MutexLock lock(mutex_);
  auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0
                            : it->second->fires.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::ProbeCount(std::string_view site) const {
  MutexLock lock(mutex_);
  auto it = sites_.find(std::string(site));
  return it == sites_.end()
             ? 0
             : it->second->probes.load(std::memory_order_relaxed);
}

void FaultInjector::ResetCounters() {
  MutexLock lock(mutex_);
  for (auto& [key, site] : sites_) {
    site->probes.store(0, std::memory_order_relaxed);
    site->fires.store(0, std::memory_order_relaxed);
  }
}

ScopedFaultPlan::ScopedFaultPlan(std::string_view plan)
    : previous_(FaultInjector::Global().plan()) {
  Status s = FaultInjector::Global().Configure(plan);
  SPECQP_CHECK(s.ok()) << "ScopedFaultPlan: " << s.ToString();
}

ScopedFaultPlan::~ScopedFaultPlan() {
  Status s = FaultInjector::Global().Configure(previous_);
  SPECQP_CHECK(s.ok()) << "ScopedFaultPlan restore: " << s.ToString();
}

}  // namespace specqp
