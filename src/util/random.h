#ifndef SPECQP_UTIL_RANDOM_H_
#define SPECQP_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace specqp {

// Deterministic, seedable PRNG (xoshiro256**). All randomness in the library
// (generators, workloads, property tests) flows through this class so that
// every experiment is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  // Uniform over [0, 2^64).
  uint64_t NextUint64();

  // Uniform over [0, bound); bound must be > 0. Uses Lemire's unbiased
  // multiply-shift rejection method.
  uint64_t NextBounded(uint64_t bound);

  // Uniform over [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform over [0, 1).
  double NextDouble();

  // Uniform over [lo, hi).
  double NextDouble(double lo, double hi);

  // Bernoulli(p); p clamped to [0, 1].
  bool NextBool(double p = 0.5);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // Picks one index in [0, weights.size()) with probability proportional to
  // weights[i]; weights must be non-negative with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

  // Forks a statistically independent stream (for sub-generators).
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace specqp

#endif  // SPECQP_UTIL_RANDOM_H_
