#ifndef SPECQP_UTIL_RETRY_H_
#define SPECQP_UTIL_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/status.h"

namespace specqp {

// Bounded-attempt retry with exponential backoff and deterministic jitter.
// Reused by shard opens (ShardedStore::Open) and Submit callers
// (SubmitWithRetry in core/engine.h); construct once and share — the policy
// itself is immutable state, so it is safe to use from multiple threads.
struct RetryPolicy {
  // Total tries including the first one; <= 1 means "no retries".
  int max_attempts = 3;
  std::chrono::microseconds initial_backoff{1000};
  std::chrono::microseconds max_backoff{100000};
  double multiplier = 2.0;
  // Backoff is scaled by a uniform factor in [1-j, 1+j]; keeps concurrent
  // retriers from stampeding in lockstep while staying deterministic for a
  // fixed (seed, attempt) pair.
  double jitter_fraction = 0.25;
  uint64_t seed = 0x5eedULL;
  // Codes worth retrying: transient resource states, not semantic errors.
  std::vector<StatusCode> retryable = {
      StatusCode::kUnavailable,
      StatusCode::kResourceExhausted,
      StatusCode::kIoError,
  };

  bool IsRetryable(StatusCode code) const;

  // Deterministic backoff (including jitter) before retry number `attempt`
  // (1 = the delay after the first failure). Exposed separately so tests
  // and benches can account for the exact schedule without sleeping.
  std::chrono::microseconds BackoffFor(int attempt) const;

  // Convenience for propagating a server-suggested delay (e.g.
  // QueryResponse::retry_after_ms): the larger of the hint and the policy's
  // own backoff for this attempt, still capped at max_backoff.
  std::chrono::microseconds BackoffFor(int attempt,
                                       std::chrono::microseconds hint) const;
};

// Adapters so RunWithRetry works for both Status and Result<T> callables.
inline const Status& StatusOf(const Status& s) { return s; }
template <typename R>
auto StatusOf(const R& r) -> decltype(r.status()) {
  return r.status();
}

// Runs `fn` (returning Status or Result<T>) up to policy.max_attempts times,
// sleeping policy.BackoffFor(i) between attempts while the outcome is
// retryable. Returns the last outcome; on success, stops immediately. If
// `attempts_out` is non-null it receives the number of calls made.
template <typename Fn>
auto RunWithRetry(const RetryPolicy& policy, Fn&& fn,
                  int* attempts_out = nullptr) -> decltype(fn()) {
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  int attempt = 1;
  for (;; ++attempt) {
    auto outcome = fn();
    const bool retryable = !outcome.ok() &&
                           policy.IsRetryable(StatusOf(outcome).code()) &&
                           attempt < max_attempts;
    if (!retryable) {
      if (attempts_out != nullptr) *attempts_out = attempt;
      return outcome;
    }
    std::this_thread::sleep_for(policy.BackoffFor(attempt));
  }
}

}  // namespace specqp

#endif  // SPECQP_UTIL_RETRY_H_
