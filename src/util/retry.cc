#include "util/retry.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace specqp {

namespace {

// splitmix64 finalizer; deterministic jitter comes from mixing the policy
// seed with the attempt number, never from a global RNG, so a fixed policy
// replays the exact same backoff schedule.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

bool RetryPolicy::IsRetryable(StatusCode code) const {
  for (StatusCode c : retryable) {
    if (c == code) return true;
  }
  return false;
}

std::chrono::microseconds RetryPolicy::BackoffFor(int attempt) const {
  if (attempt < 1) attempt = 1;
  const double base = static_cast<double>(initial_backoff.count()) *
                      std::pow(multiplier, static_cast<double>(attempt - 1));
  const double capped =
      std::min(base, static_cast<double>(max_backoff.count()));
  const double u = static_cast<double>(Mix(seed ^ static_cast<uint64_t>(
                                                      attempt))) /
                   static_cast<double>(std::numeric_limits<uint64_t>::max());
  const double jitter =
      1.0 + jitter_fraction * (2.0 * u - 1.0);  // [1-j, 1+j]
  const double scaled = std::max(0.0, capped * jitter);
  return std::chrono::microseconds(static_cast<int64_t>(scaled));
}

std::chrono::microseconds RetryPolicy::BackoffFor(
    int attempt, std::chrono::microseconds hint) const {
  return std::min(std::max(BackoffFor(attempt), hint), max_backoff);
}

}  // namespace specqp
