#ifndef SPECQP_UTIL_TIMER_H_
#define SPECQP_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace specqp {

// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace specqp

#endif  // SPECQP_UTIL_TIMER_H_
