#ifndef SPECQP_UTIL_LOGGING_H_
#define SPECQP_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace specqp {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Minimum severity that is emitted; defaults to kInfo. Not thread-safe to
// mutate concurrently with logging (set it once at startup).
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal {

// Accumulates one log line and emits it (to stderr) on destruction.
// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace specqp

#define SPECQP_LOG(severity)                                        \
  ::specqp::internal::LogMessage(::specqp::LogSeverity::k##severity, \
                                 __FILE__, __LINE__)

// Always-on invariant check; aborts with a message when `cond` is false.
// Additional context can be streamed: SPECQP_CHECK(x > 0) << "x=" << x;
#define SPECQP_CHECK(cond)                                       \
  (cond) ? (void)0                                               \
         : ::specqp::internal::Voidify() &                       \
               ::specqp::internal::LogMessage(                   \
                   ::specqp::LogSeverity::kFatal, __FILE__,      \
                   __LINE__)                                     \
                   << "Check failed: " #cond " "

#define SPECQP_CHECK_EQ(a, b) SPECQP_CHECK((a) == (b))
#define SPECQP_CHECK_NE(a, b) SPECQP_CHECK((a) != (b))
#define SPECQP_CHECK_LT(a, b) SPECQP_CHECK((a) < (b))
#define SPECQP_CHECK_LE(a, b) SPECQP_CHECK((a) <= (b))
#define SPECQP_CHECK_GT(a, b) SPECQP_CHECK((a) > (b))
#define SPECQP_CHECK_GE(a, b) SPECQP_CHECK((a) >= (b))

#ifndef NDEBUG
#define SPECQP_DCHECK(cond) SPECQP_CHECK(cond)
#else
#define SPECQP_DCHECK(cond) \
  true ? (void)0 : ::specqp::internal::Voidify() & ::specqp::internal::NullStream()
#endif

namespace specqp::internal {

// Lets the CHECK macros use the ternary operator with a streamed RHS.
struct Voidify {
  void operator&(LogMessage&) {}
  void operator&(NullStream&) {}
  void operator&(LogMessage&&) {}
  void operator&(NullStream&&) {}
};

}  // namespace specqp::internal

#endif  // SPECQP_UTIL_LOGGING_H_
