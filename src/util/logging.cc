#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace specqp {

namespace {
LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}
}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::string line = stream_.str();
    std::fprintf(stderr, "%s\n", line.c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace specqp
