#ifndef SPECQP_UTIL_MUTEX_H_
#define SPECQP_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace specqp {

// Annotated wrappers over std::mutex / std::condition_variable.
//
// libstdc++'s std::mutex carries no capability attribute, so Clang's
// Thread Safety Analysis cannot see it. specqp::Mutex is a zero-overhead
// wrapper that is a capability; all long-lived mutex members in the tree
// use it (specqp_lint.py rule 4 rejects raw std::mutex members outside
// this header).
//
// Lock/Unlock are exposed directly — unlike std::unique_lock's
// unlock()/lock() dance, explicit balanced calls are something the
// analysis tracks flow-sensitively, which the dispatcher/worker loops
// (admission.cc, thread_pool.cc) rely on.
class SPECQP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SPECQP_ACQUIRE() { mu_.lock(); }
  void Unlock() SPECQP_RELEASE() { mu_.unlock(); }
  bool TryLock() SPECQP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Escape hatch for CondVar below. The analysis does not follow raw(),
  // so only CondVar (which re-establishes the capability contract via
  // SPECQP_REQUIRES on Wait) should use it.
  std::mutex& raw() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock. Replaces std::lock_guard<std::mutex> at every call site.
class SPECQP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SPECQP_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SPECQP_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to specqp::Mutex. Wait/WaitFor require the
// mutex to be held, mirroring std::condition_variable's contract; callers
// write explicit `while (!predicate) cv.Wait(mu);` loops so the analysis
// sees the lock held across the predicate check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) SPECQP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.raw(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // the caller still owns the lock; don't unlock on scope exit
  }

  // Returns std::cv_status::timeout when the deadline passed first.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& dur)
      SPECQP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.raw(), std::adopt_lock);
    std::cv_status status = cv_.wait_for(lk, dur);
    lk.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace specqp

#endif  // SPECQP_UTIL_MUTEX_H_
