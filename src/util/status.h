#ifndef SPECQP_UTIL_STATUS_H_
#define SPECQP_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace specqp {

// Canonical error space used across the library. The library does not throw
// exceptions across API boundaries; fallible operations return a Status (or a
// Result<T>, see result.h) instead.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kCorruption = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kCancelled = 10,
  kDeadlineExceeded = 11,
  // The backing data (a quarantined shard, a store mid-reopen) is not
  // servable right now; retrying after the store recovers may succeed.
  kUnavailable = 12,
  // The server shed the request before execution (admission queue full,
  // deadline unmeetable); the caller should back off and retry.
  kResourceExhausted = 13,
};

// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeToString(StatusCode code);

// Value-type carrying a StatusCode plus an optional message. The OK status
// carries no message and is cheap to copy.
//
// [[nodiscard]] on the class makes every by-value Status return checked at
// the call site: a dropped kIoError/kUnavailable is a compile warning (an
// error under -Werror), not a silently shipped fault. Intentional drops
// spell it out with a (void) cast or SPECQP_IGNORE_STATUS below.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace specqp

// Propagates a non-OK status to the caller. Usable in functions returning
// Status or Result<T> (Result is constructible from Status).
#define SPECQP_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::specqp::Status _specqp_status = (expr);         \
    if (!_specqp_status.ok()) return _specqp_status;  \
  } while (false)

// Explicitly discards a Status. Use only where dropping the error is the
// design (e.g. a best-effort cleanup path) and say why in a comment.
#define SPECQP_IGNORE_STATUS(expr) \
  do {                             \
    (void)(expr);                  \
  } while (false)

#endif  // SPECQP_UTIL_STATUS_H_
