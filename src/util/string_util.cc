#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace specqp {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string_view> StrSplit(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string DoubleToString(double v, int precision) {
  std::string s = StrFormat("%.*f", precision, v);
  // Trim trailing zeros but keep at least one digit after the point.
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') ++last;
    s.erase(last + 1);
  }
  return s;
}

}  // namespace specqp
