#include "relax/relaxation_index.h"

#include <algorithm>

namespace specqp {

namespace {
bool RuleOrder(const RelaxationRule& a, const RelaxationRule& b) {
  if (a.weight != b.weight) return a.weight > b.weight;
  return std::tie(a.to.s, a.to.p, a.to.o) < std::tie(b.to.s, b.to.p, b.to.o);
}
}  // namespace

Status RelaxationIndex::AddRule(const RelaxationRule& rule) {
  SPECQP_RETURN_IF_ERROR(ValidateRule(rule));
  std::vector<RelaxationRule>& bucket = rules_[rule.from];
  for (RelaxationRule& existing : bucket) {
    if (existing.to == rule.to) {
      if (rule.weight > existing.weight) {
        existing.weight = rule.weight;
        std::sort(bucket.begin(), bucket.end(), RuleOrder);
      }
      return Status::Ok();
    }
  }
  // Insert keeping the bucket sorted by weight.
  auto pos = std::upper_bound(bucket.begin(), bucket.end(), rule, RuleOrder);
  bucket.insert(pos, rule);
  ++total_rules_;
  return Status::Ok();
}

std::span<const RelaxationRule> RelaxationIndex::RulesFor(
    const PatternKey& key) const {
  auto it = rules_.find(key);
  if (it == rules_.end()) return {};
  return it->second;
}

const RelaxationRule* RelaxationIndex::TopRule(const PatternKey& key) const {
  auto span = RulesFor(key);
  return span.empty() ? nullptr : &span.front();
}

Status RelaxationIndex::AddChainRule(const ChainRelaxationRule& rule) {
  SPECQP_RETURN_IF_ERROR(ValidateChainRule(rule));
  std::vector<ChainRelaxationRule>& bucket = chain_rules_[rule.from];
  auto same_hops = [&rule](const ChainRelaxationRule& existing) {
    return existing.hop1_predicate == rule.hop1_predicate &&
           existing.hop2_predicate == rule.hop2_predicate &&
           existing.hop2_object == rule.hop2_object;
  };
  auto order = [](const ChainRelaxationRule& a, const ChainRelaxationRule& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return std::tie(a.hop1_predicate, a.hop2_predicate, a.hop2_object) <
           std::tie(b.hop1_predicate, b.hop2_predicate, b.hop2_object);
  };
  for (ChainRelaxationRule& existing : bucket) {
    if (same_hops(existing)) {
      if (rule.weight > existing.weight) {
        existing.weight = rule.weight;
        std::sort(bucket.begin(), bucket.end(), order);
      }
      return Status::Ok();
    }
  }
  bucket.insert(std::upper_bound(bucket.begin(), bucket.end(), rule, order),
                rule);
  ++total_chain_rules_;
  return Status::Ok();
}

std::span<const ChainRelaxationRule> RelaxationIndex::ChainRulesFor(
    const PatternKey& key) const {
  auto it = chain_rules_.find(key);
  if (it == chain_rules_.end()) return {};
  return it->second;
}

const ChainRelaxationRule* RelaxationIndex::TopChainRule(
    const PatternKey& key) const {
  auto span = ChainRulesFor(key);
  return span.empty() ? nullptr : &span.front();
}

std::vector<RelaxationRule> RelaxationIndex::AllRules() const {
  std::vector<RelaxationRule> all;
  all.reserve(total_rules_);
  for (const auto& [key, bucket] : rules_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  std::sort(all.begin(), all.end(),
            [](const RelaxationRule& a, const RelaxationRule& b) {
              if (!(a.from == b.from)) {
                return std::tie(a.from.s, a.from.p, a.from.o) <
                       std::tie(b.from.s, b.from.p, b.from.o);
              }
              return RuleOrder(a, b);
            });
  return all;
}

}  // namespace specqp
