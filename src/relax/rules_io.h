#ifndef SPECQP_RELAX_RULES_IO_H_
#define SPECQP_RELAX_RULES_IO_H_

#include <string>

#include "relax/relaxation_index.h"
#include "util/result.h"
#include "util/status.h"

namespace specqp {

// Binary relaxation-rule format "SQPRULE1":
//
//   [8]  magic "SQPRULE1"
//   [4]  u32 format version (currently 1)
//   [8]  u64 rule count
//   per rule: from.s from.p from.o to.s to.p to.o (u32 each), weight (f64)
//   [4]  u32 CRC-32C over the payload (count + rules)
//
// TermIds refer to the dictionary of the store the rules were mined from,
// so a rule file only makes sense next to its store file (see
// rdf/store_io.h). Load validates magic, version, CRC, and each rule's
// structural invariants.

[[nodiscard]] Status SaveRules(const RelaxationIndex& rules, const std::string& path);

[[nodiscard]] Result<RelaxationIndex> LoadRules(const std::string& path);

}  // namespace specqp

#endif  // SPECQP_RELAX_RULES_IO_H_
