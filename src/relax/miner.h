#ifndef SPECQP_RELAX_MINER_H_
#define SPECQP_RELAX_MINER_H_

#include "rdf/triple_store.h"
#include "relax/relaxation_index.h"
#include "util/status.h"

namespace specqp {

struct MinerOptions {
  // Minimum number of common subjects for a rule to be emitted.
  size_t min_support = 2;
  // Keep at most this many rules per domain pattern (the strongest ones).
  size_t max_rules_per_pattern = 25;
  // Rules with containment weight below this are dropped.
  double min_weight = 0.01;
  // Weights are clamped to this cap so a relaxation never scores *equal* to
  // the original pattern (containment can reach 1.0 when inst(O1) is a
  // subset of inst(O2), e.g. a type and its super-type).
  double weight_cap = 0.95;
  // For very popular objects, only this many subjects are examined when
  // counting co-occurrences (keeps mining near-linear; 0 = no cap).
  size_t max_subject_sample = 4096;
};

// Mines object-position relaxation rules for every pattern of the form
// (?s <predicate> O): for each pair of objects O1, O2 co-occurring on a
// subject,
//
//     w(O1 -> O2) = |subjects(p, O1) ∩ subjects(p, O2)| / |subjects(p, O1)|
//
// which is exactly the paper's Twitter weighting
// (#tweets_having_T1_and_T2 / #tweets_having_T1, section 4.2) and the
// co-instance containment used for XKG-style type relaxations
// (<singer> ~> <vocalist> with high weight because most singers are also
// vocalists). Emitted rules are appended to `index`.
[[nodiscard]] Status MineObjectCooccurrence(const TripleStore& store, TermId predicate,
                              const MinerOptions& options,
                              RelaxationIndex* index);

struct ChainMinerOptions {
  // Minimum number of subjects reachable through the chain.
  size_t min_support = 3;
  double min_weight = 0.05;
  double weight_cap = 0.9;
};

// Mines chain relaxations (the section-6 extension): for every object o of
// `predicate` that has incoming `related_predicate` edges,
//
//   (?s <predicate> <o>)  ~>  (?s <predicate> ?z) . (?z <related> <o>)
//
// with weight = |subjects(chain) ∩ subjects(?s predicate o)| /
// |subjects(chain)| — the precision of "matches something related to o" as
// a predictor of "matches o", clamped to weight_cap.
[[nodiscard]] Status MineChainRelaxations(const TripleStore& store, TermId predicate,
                            TermId related_predicate,
                            const ChainMinerOptions& options,
                            RelaxationIndex* index);

}  // namespace specqp

#endif  // SPECQP_RELAX_MINER_H_
