#ifndef SPECQP_RELAX_RELAXATION_H_
#define SPECQP_RELAX_RELAXATION_H_

#include <string>

#include "rdf/dictionary.h"
#include "rdf/triple_pattern.h"
#include "util/result.h"

namespace specqp {

// A weighted relaxation rule r = (q, q', w) (Definition 7). Both sides are
// stored as match-set keys (variable names erased): a rule rewrites the
// constants of a pattern and leaves its variables in place, so the key is
// the entire identity of each side. `weight` in (0, 1] is the score
// reduction applied to matches of the relaxed pattern.
struct RelaxationRule {
  PatternKey from;
  PatternKey to;
  double weight = 0.0;

  friend bool operator==(const RelaxationRule& a, const RelaxationRule& b) {
    return a.from == b.from && a.to == b.to && a.weight == b.weight;
  }
};

// Validates structural well-formedness: weight in (0, 1], identical bound
// mask on both sides, from != to.
[[nodiscard]] Status ValidateRule(const RelaxationRule& rule);

// Rewrites `pattern` (whose Key() must equal rule.from) by substituting the
// constants of rule.to; variables keep their positions and ids. Definition 8's
// "result of applying r to Q" for a single pattern.
[[nodiscard]] Result<TriplePattern> ApplyRule(const TriplePattern& pattern,
                                const RelaxationRule& rule);

// "<singer> ~> <vocalist> (w=0.8)" — for logs and examples.
std::string RuleToString(const RelaxationRule& rule, const Dictionary& dict);

// ---------------------------------------------------------------------------
// Chain relaxations — the paper's section-6 future work: "replacing a
// triple pattern with a chain of triple patterns". A rule
//
//   (?s <p> <o>)  ~>  (?s <hop1_p> ?z) . (?z <hop2_p> <hop2_o>)   [w]
//
// rewrites an object-bound pattern into a two-hop chain through a fresh
// variable ?z ("plays something related to the guitar" instead of "plays
// the guitar"). Operationally each hop contributes w/2 times its
// normalised score, so the chain's total contribution lies in [0, w] —
// preserving PLANGEN's invariant that a relaxation's best possible
// contribution equals its weight.
// ---------------------------------------------------------------------------

struct ChainRelaxationRule {
  // Domain pattern: subject free, predicate + object bound.
  PatternKey from;
  TermId hop1_predicate = kInvalidTermId;  // (?s hop1_p ?z)
  TermId hop2_predicate = kInvalidTermId;  // (?z hop2_p hop2_o)
  TermId hop2_object = kInvalidTermId;
  double weight = 0.0;

  friend bool operator==(const ChainRelaxationRule& a,
                         const ChainRelaxationRule& b) {
    return a.from == b.from && a.hop1_predicate == b.hop1_predicate &&
           a.hop2_predicate == b.hop2_predicate &&
           a.hop2_object == b.hop2_object && a.weight == b.weight;
  }
};

// weight in (0, 1]; domain has exactly subject free; hop terms valid.
[[nodiscard]] Status ValidateChainRule(const ChainRelaxationRule& rule);

// The two concrete hop patterns for `pattern` (whose Key() must equal
// rule.from and whose subject must be a variable); `fresh_var` is the
// binding slot for ?z, assigned by the caller.
struct ChainPatterns {
  TriplePattern hop1;
  TriplePattern hop2;
};
[[nodiscard]] Result<ChainPatterns> ApplyChainRule(const TriplePattern& pattern,
                                     const ChainRelaxationRule& rule,
                                     VarId fresh_var);

// "<plays><guitar> ~> (?s <plays> ?z)(?z <relatedTo> <guitar>) (w=0.6)".
std::string ChainRuleToString(const ChainRelaxationRule& rule,
                              const Dictionary& dict);

}  // namespace specqp

#endif  // SPECQP_RELAX_RELAXATION_H_
