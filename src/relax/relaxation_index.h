#ifndef SPECQP_RELAX_RELAXATION_INDEX_H_
#define SPECQP_RELAX_RELAXATION_INDEX_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "rdf/triple_pattern.h"
#include "relax/relaxation.h"
#include "util/status.h"

namespace specqp {

// All relaxation rules of a knowledge graph, grouped by domain pattern and
// kept sorted by descending weight — so the planner's "top-weighted
// relaxation" (section 3.2.1) is rules.front(), and the incremental merge
// receives lists already ordered by the weight-derived score cap.
class RelaxationIndex {
 public:
  RelaxationIndex() = default;

  RelaxationIndex(const RelaxationIndex&) = delete;
  RelaxationIndex& operator=(const RelaxationIndex&) = delete;
  RelaxationIndex(RelaxationIndex&&) = default;
  RelaxationIndex& operator=(RelaxationIndex&&) = default;

  // Validates and inserts. A duplicate (from, to) pair keeps the higher
  // weight.
  [[nodiscard]] Status AddRule(const RelaxationRule& rule);

  // Rules whose domain is `key`, sorted by weight descending (ties by
  // target ids for determinism). Empty span if none.
  std::span<const RelaxationRule> RulesFor(const PatternKey& key) const;

  // The top-weighted rule for `key`, or nullptr.
  const RelaxationRule* TopRule(const PatternKey& key) const;

  size_t NumRulesFor(const PatternKey& key) const {
    return RulesFor(key).size();
  }
  size_t total_rules() const { return total_rules_; }
  size_t num_domains() const { return rules_.size(); }

  // Every rule in a deterministic order (by domain key, then weight
  // descending) — for serialisation and debugging.
  std::vector<RelaxationRule> AllRules() const;

  // --- chain relaxations (section-6 extension) -----------------------------

  // Validates and inserts; duplicates (same domain and hops) keep the
  // higher weight.
  [[nodiscard]] Status AddChainRule(const ChainRelaxationRule& rule);

  // Chain rules for `key`, sorted by weight descending.
  std::span<const ChainRelaxationRule> ChainRulesFor(
      const PatternKey& key) const;

  const ChainRelaxationRule* TopChainRule(const PatternKey& key) const;

  size_t total_chain_rules() const { return total_chain_rules_; }

 private:
  std::unordered_map<PatternKey, std::vector<RelaxationRule>, PatternKeyHash>
      rules_;
  std::unordered_map<PatternKey, std::vector<ChainRelaxationRule>,
                     PatternKeyHash>
      chain_rules_;
  size_t total_rules_ = 0;
  size_t total_chain_rules_ = 0;
};

}  // namespace specqp

#endif  // SPECQP_RELAX_RELAXATION_INDEX_H_
