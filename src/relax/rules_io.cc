#include "relax/rules_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/crc32.h"
#include "util/string_util.h"

namespace specqp {

namespace {

constexpr char kMagic[8] = {'S', 'Q', 'P', 'R', 'U', 'L', 'E', '1'};
constexpr uint32_t kFormatVersion = 1;

void AppendU32(std::string* buf, uint32_t v) {
  char tmp[4];
  std::memcpy(tmp, &v, 4);
  buf->append(tmp, 4);
}

void AppendU64(std::string* buf, uint64_t v) {
  char tmp[8];
  std::memcpy(tmp, &v, 8);
  buf->append(tmp, 8);
}

void AppendF64(std::string* buf, double v) {
  char tmp[8];
  std::memcpy(tmp, &v, 8);
  buf->append(tmp, 8);
}

}  // namespace

Status SaveRules(const RelaxationIndex& rules, const std::string& path) {
  std::string payload;
  const std::vector<RelaxationRule> all = rules.AllRules();
  AppendU64(&payload, all.size());
  for (const RelaxationRule& rule : all) {
    AppendU32(&payload, rule.from.s);
    AppendU32(&payload, rule.from.p);
    AppendU32(&payload, rule.from.o);
    AppendU32(&payload, rule.to.s);
    AppendU32(&payload, rule.to.p);
    AppendU32(&payload, rule.to.o);
    AppendF64(&payload, rule.weight);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  out.write(kMagic, sizeof(kMagic));
  const uint32_t version = kFormatVersion;
  out.write(reinterpret_cast<const char*>(&version), 4);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  out.write(reinterpret_cast<const char*>(&crc), 4);
  out.flush();
  if (!out) {
    return Status::IoError(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::Ok();
}

Result<RelaxationIndex> LoadRules(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  const std::streamsize file_size = in.tellg();
  in.seekg(0);
  std::string blob(static_cast<size_t>(file_size), '\0');
  in.read(blob.data(), file_size);
  if (!in) {
    return Status::IoError(StrFormat("short read from '%s'", path.c_str()));
  }

  constexpr size_t kHeader = 8 + 4;
  if (blob.size() < kHeader + 8 + 4) {
    return Status::Corruption("rule file too small");
  }
  if (std::memcmp(blob.data(), kMagic, 8) != 0) {
    return Status::Corruption("bad magic; not a Spec-QP rule file");
  }
  uint32_t version = 0;
  std::memcpy(&version, blob.data() + 8, 4);
  if (version != kFormatVersion) {
    return Status::Corruption(StrFormat("unsupported version %u", version));
  }

  const char* payload = blob.data() + kHeader;
  const size_t payload_size = blob.size() - kHeader - 4;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, blob.data() + blob.size() - 4, 4);
  if (Crc32c(payload, payload_size) != stored_crc) {
    return Status::Corruption("rule payload CRC mismatch");
  }

  uint64_t count = 0;
  std::memcpy(&count, payload, 8);
  constexpr size_t kRuleBytes = 6 * 4 + 8;
  if (payload_size != 8 + count * kRuleBytes) {
    return Status::Corruption("rule count does not match payload size");
  }

  RelaxationIndex index;
  const char* cursor = payload + 8;
  for (uint64_t i = 0; i < count; ++i) {
    RelaxationRule rule;
    uint32_t fields[6];
    std::memcpy(fields, cursor, sizeof(fields));
    cursor += sizeof(fields);
    std::memcpy(&rule.weight, cursor, 8);
    cursor += 8;
    rule.from = PatternKey{fields[0], fields[1], fields[2]};
    rule.to = PatternKey{fields[3], fields[4], fields[5]};
    const Status added = index.AddRule(rule);
    if (!added.ok()) {
      return Status::Corruption(
          StrFormat("rule %llu invalid: %s",
                    static_cast<unsigned long long>(i),
                    added.ToString().c_str()));
    }
  }
  return index;
}

}  // namespace specqp
