#include "relax/expansion.h"

#include "util/logging.h"

namespace specqp {

PatternExpansion ExpandPattern(const RelaxationIndex& rules,
                               const PatternKey& key) {
  PatternExpansion expansion;
  const auto simple = rules.RulesFor(key);
  expansion.relaxed.reserve(simple.size());
  for (const RelaxationRule& rule : simple) {
    expansion.relaxed.push_back(rule.to);
  }
  expansion.num_rules = simple.size();
  const auto chains = rules.ChainRulesFor(key);
  expansion.chain_hops.reserve(chains.size() * 2);
  for (const ChainRelaxationRule& rule : chains) {
    expansion.chain_hops.push_back(
        PatternKey{kInvalidTermId, rule.hop1_predicate, kInvalidTermId});
    expansion.chain_hops.push_back(
        PatternKey{kInvalidTermId, rule.hop2_predicate, rule.hop2_object});
  }
  expansion.num_chain_rules = chains.size();
  return expansion;
}

RelaxationExpansionCache::RelaxationExpansionCache(
    const RelaxationIndex* rules)
    : rules_(rules) {
  SPECQP_CHECK(rules_ != nullptr);
}

const PatternExpansion& RelaxationExpansionCache::For(const PatternKey& key) {
  const auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  return memo_.emplace(key, ExpandPattern(*rules_, key)).first->second;
}

}  // namespace specqp
