#include "relax/miner.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/logging.h"

namespace specqp {

Status MineObjectCooccurrence(const TripleStore& store, TermId predicate,
                              const MinerOptions& options,
                              RelaxationIndex* index) {
  if (!store.finalized()) {
    return Status::FailedPrecondition("miner requires a finalized store");
  }
  SPECQP_CHECK(index != nullptr);

  // Collect object -> subjects and subject -> objects adjacency for the
  // predicate. Sizes are bounded by the number of (s, predicate, o) triples.
  PatternKey all{kInvalidTermId, predicate, kInvalidTermId};
  std::unordered_map<TermId, std::vector<TermId>> subjects_of_object;
  std::unordered_map<TermId, std::vector<TermId>> objects_of_subject;
  for (uint32_t idx : store.MatchIndices(all)) {
    const Triple& t = store.triple(idx);
    subjects_of_object[t.o].push_back(t.s);
    objects_of_subject[t.s].push_back(t.o);
  }

  for (auto& [object, subjects] : subjects_of_object) {
    const size_t support_o1 = subjects.size();
    if (support_o1 == 0) continue;

    // Count co-occurring objects over (a sample of) the subject list.
    size_t examined = subjects.size();
    if (options.max_subject_sample > 0 &&
        examined > options.max_subject_sample) {
      examined = options.max_subject_sample;
    }
    std::unordered_map<TermId, size_t> co_counts;
    for (size_t i = 0; i < examined; ++i) {
      for (TermId other : objects_of_subject[subjects[i]]) {
        if (other == object) continue;
        ++co_counts[other];
      }
    }

    // Scale counts back up when sampling, so weights stay comparable.
    const double scale =
        static_cast<double>(subjects.size()) / static_cast<double>(examined);

    std::vector<RelaxationRule> candidates;
    candidates.reserve(co_counts.size());
    for (const auto& [other, count] : co_counts) {
      const double support = static_cast<double>(count) * scale;
      if (support < static_cast<double>(options.min_support)) continue;
      double weight = support / static_cast<double>(support_o1);
      weight = std::min(weight, options.weight_cap);
      if (weight < options.min_weight) continue;
      RelaxationRule rule;
      rule.from = PatternKey{kInvalidTermId, predicate, object};
      rule.to = PatternKey{kInvalidTermId, predicate, other};
      rule.weight = weight;
      candidates.push_back(rule);
    }

    std::sort(candidates.begin(), candidates.end(),
              [](const RelaxationRule& a, const RelaxationRule& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.to.o < b.to.o;
              });
    if (candidates.size() > options.max_rules_per_pattern) {
      candidates.resize(options.max_rules_per_pattern);
    }
    for (const RelaxationRule& rule : candidates) {
      SPECQP_RETURN_IF_ERROR(index->AddRule(rule));
    }
  }
  return Status::Ok();
}

Status MineChainRelaxations(const TripleStore& store, TermId predicate,
                            TermId related_predicate,
                            const ChainMinerOptions& options,
                            RelaxationIndex* index) {
  if (!store.finalized()) {
    return Status::FailedPrecondition("miner requires a finalized store");
  }
  SPECQP_CHECK(index != nullptr);

  // Distinct objects of `predicate`.
  std::unordered_set<TermId> objects;
  for (uint32_t idx : store.MatchIndices(
           PatternKey{kInvalidTermId, predicate, kInvalidTermId})) {
    objects.insert(store.triple(idx).o);
  }

  for (TermId object : objects) {
    // Subjects matching the original pattern (?s predicate object).
    std::unordered_set<TermId> original_subjects;
    for (uint32_t idx : store.MatchIndices(
             PatternKey{kInvalidTermId, predicate, object})) {
      original_subjects.insert(store.triple(idx).s);
    }

    // Intermediates: z with (z related object); chain subjects: s with
    // (s predicate z).
    std::unordered_set<TermId> chain_subjects;
    for (uint32_t idx : store.MatchIndices(
             PatternKey{kInvalidTermId, related_predicate, object})) {
      const TermId z = store.triple(idx).s;
      for (uint32_t sidx : store.MatchIndices(
               PatternKey{kInvalidTermId, predicate, z})) {
        chain_subjects.insert(store.triple(sidx).s);
      }
    }
    if (chain_subjects.size() < options.min_support) continue;

    size_t both = 0;
    for (TermId s : chain_subjects) {
      if (original_subjects.count(s) > 0) ++both;
    }
    double weight = static_cast<double>(both) /
                    static_cast<double>(chain_subjects.size());
    weight = std::min(weight, options.weight_cap);
    if (weight < options.min_weight) continue;

    ChainRelaxationRule rule;
    rule.from = PatternKey{kInvalidTermId, predicate, object};
    rule.hop1_predicate = predicate;
    rule.hop2_predicate = related_predicate;
    rule.hop2_object = object;
    rule.weight = weight;
    SPECQP_RETURN_IF_ERROR(index->AddChainRule(rule));
  }
  return Status::Ok();
}

}  // namespace specqp
