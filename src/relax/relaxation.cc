#include "relax/relaxation.h"

#include "util/string_util.h"

namespace specqp {

Status ValidateRule(const RelaxationRule& rule) {
  if (!(rule.weight > 0.0) || rule.weight > 1.0) {
    return Status::InvalidArgument(
        StrFormat("relaxation weight %f outside (0, 1]", rule.weight));
  }
  if (rule.from.s_bound() != rule.to.s_bound() ||
      rule.from.p_bound() != rule.to.p_bound() ||
      rule.from.o_bound() != rule.to.o_bound()) {
    return Status::InvalidArgument(
        "relaxation rule changes which positions are bound");
  }
  if (rule.from == rule.to) {
    return Status::InvalidArgument("relaxation rule maps a pattern to itself");
  }
  return Status::Ok();
}

Result<TriplePattern> ApplyRule(const TriplePattern& pattern,
                                const RelaxationRule& rule) {
  if (!(pattern.Key() == rule.from)) {
    return Status::FailedPrecondition(
        "rule does not apply: pattern key differs from rule domain");
  }
  TriplePattern out = pattern;
  if (out.s.is_constant()) out.s = PatternTerm::Const(rule.to.s);
  if (out.p.is_constant()) out.p = PatternTerm::Const(rule.to.p);
  if (out.o.is_constant()) out.o = PatternTerm::Const(rule.to.o);
  return out;
}

Status ValidateChainRule(const ChainRelaxationRule& rule) {
  if (!(rule.weight > 0.0) || rule.weight > 1.0) {
    return Status::InvalidArgument(
        StrFormat("chain relaxation weight %f outside (0, 1]", rule.weight));
  }
  if (rule.from.s_bound() || !rule.from.p_bound() || !rule.from.o_bound()) {
    return Status::InvalidArgument(
        "chain relaxation domain must be (?s <p> <o>): subject free, "
        "predicate and object bound");
  }
  if (rule.hop1_predicate == kInvalidTermId ||
      rule.hop2_predicate == kInvalidTermId ||
      rule.hop2_object == kInvalidTermId) {
    return Status::InvalidArgument("chain relaxation hops must be bound");
  }
  return Status::Ok();
}

Result<ChainPatterns> ApplyChainRule(const TriplePattern& pattern,
                                     const ChainRelaxationRule& rule,
                                     VarId fresh_var) {
  if (!(pattern.Key() == rule.from)) {
    return Status::FailedPrecondition(
        "chain rule does not apply: pattern key differs from rule domain");
  }
  if (!pattern.s.is_variable()) {
    return Status::FailedPrecondition(
        "chain rule requires a subject variable");
  }
  ChainPatterns out;
  out.hop1 = TriplePattern(pattern.s, PatternTerm::Const(rule.hop1_predicate),
                           PatternTerm::Var(fresh_var));
  out.hop2 = TriplePattern(PatternTerm::Var(fresh_var),
                           PatternTerm::Const(rule.hop2_predicate),
                           PatternTerm::Const(rule.hop2_object));
  return out;
}

namespace {
std::string KeyToString(const PatternKey& key, const Dictionary& dict) {
  auto render = [&dict](TermId id) -> std::string {
    if (id == kInvalidTermId) return "?";
    std::string_view name = dict.Name(id);
    return StrFormat("<%.*s>", static_cast<int>(name.size()), name.data());
  };
  return render(key.s) + " " + render(key.p) + " " + render(key.o);
}
}  // namespace

std::string RuleToString(const RelaxationRule& rule, const Dictionary& dict) {
  return StrFormat("%s ~> %s (w=%s)", KeyToString(rule.from, dict).c_str(),
                   KeyToString(rule.to, dict).c_str(),
                   DoubleToString(rule.weight).c_str());
}

std::string ChainRuleToString(const ChainRelaxationRule& rule,
                              const Dictionary& dict) {
  auto name = [&dict](TermId id) { return std::string(dict.Name(id)); };
  return StrFormat("%s ~> (?s <%s> ?z)(?z <%s> <%s>) (w=%s)",
                   KeyToString(rule.from, dict).c_str(),
                   name(rule.hop1_predicate).c_str(),
                   name(rule.hop2_predicate).c_str(),
                   name(rule.hop2_object).c_str(),
                   DoubleToString(rule.weight).c_str());
}

}  // namespace specqp
