#ifndef SPECQP_RELAX_EXPANSION_H_
#define SPECQP_RELAX_EXPANSION_H_

#include <unordered_map>
#include <vector>

#include "rdf/triple_pattern.h"
#include "relax/relaxation_index.h"

namespace specqp {

// The full relaxation expansion of one pattern key: every pattern key an
// execution (or a cache-warming pass) touches when the pattern runs with
// its relaxations — mined once from the rule index per distinct pattern
// and reused across the queries of a batch.
struct PatternExpansion {
  // Simple-rule targets, in the index's weight-descending order.
  std::vector<PatternKey> relaxed;
  // Chain-rule hop keys, two per chain rule: (?s hop1_p ?z), (?z hop2_p o).
  std::vector<PatternKey> chain_hops;
  size_t num_rules = 0;
  size_t num_chain_rules = 0;
};

// Mines `key`'s expansion from `rules` (one index probe per rule family).
PatternExpansion ExpandPattern(const RelaxationIndex& rules,
                               const PatternKey& key);

// Batch-scoped memo: the expansion of each distinct pattern is mined once,
// no matter how many queries of the batch (or relaxed variants of one
// query) repeat the pattern. Not thread-safe — the batch prepare phase and
// Engine::Warm run single-threaded.
class RelaxationExpansionCache {
 public:
  explicit RelaxationExpansionCache(const RelaxationIndex* rules);

  RelaxationExpansionCache(const RelaxationExpansionCache&) = delete;
  RelaxationExpansionCache& operator=(const RelaxationExpansionCache&) = delete;

  const PatternExpansion& For(const PatternKey& key);

  // Distinct patterns expanded so far.
  size_t size() const { return memo_.size(); }

 private:
  const RelaxationIndex* rules_;
  std::unordered_map<PatternKey, PatternExpansion, PatternKeyHash> memo_;
};

}  // namespace specqp

#endif  // SPECQP_RELAX_EXPANSION_H_
