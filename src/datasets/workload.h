#ifndef SPECQP_DATASETS_WORKLOAD_H_
#define SPECQP_DATASETS_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "datasets/twitter_generator.h"
#include "datasets/xkg_generator.h"
#include "query/query.h"

namespace specqp {

// Seeded random workloads mirroring the paper's hand-built query sets
// (section 4.2): star-shaped triple-pattern queries with a guaranteed
// relaxation fan-out per pattern, and (for XKG) non-empty original result
// sets.

struct XkgWorkloadConfig {
  uint64_t seed = 7;
  // Paper: 65 queries, 2-4 triple patterns, >= 10 relaxations per pattern.
  size_t queries_per_size = 22;  // for each of 2, 3, 4 patterns
  size_t min_relaxations = 10;
  // Candidates are rejected unless the *original* query has at least this
  // many answers ("manually constructed so as to have non-empty result
  // sets").
  uint64_t min_original_answers = 1;
  // Original-result-size bands cycled across the workload, mimicking the
  // paper's hand-built mix: some queries are recall-starved (every pattern
  // needs relaxing), others can fill most of the top-k from original
  // matches (few or no relaxations required) — that spread is what
  // Table 3's "queries requiring N relaxations" rows measure. A query at
  // position i targets bands[i % bands.size()]; when a band cannot be
  // satisfied within the attempt budget the constraint falls back to
  // [min_original_answers, inf).
  std::vector<std::pair<uint64_t, uint64_t>> cardinality_bands = {
      {1, 8}, {8, 40}, {40, 100000}};
  size_t max_attempts_per_query = 400;
};

struct TwitterWorkloadConfig {
  uint64_t seed = 11;
  // Paper: 50 queries, 2-3 triple patterns, >= 5 relaxations per pattern.
  size_t queries_per_size = 25;  // for each of 2, 3 patterns
  size_t min_relaxations = 5;
  // Twitter queries may have empty original conjunctions (that is the
  // point: most need every pattern relaxed) but must have enough answers
  // within the relaxation space for top-k metrics to be well defined.
  uint64_t min_relaxed_answers = 20;
  size_t max_attempts_per_query = 400;
};

// Star queries over one subject variable mixing rdf:type and attribute
// patterns from a single domain. Returned queries are grouped by size
// (all 2-pattern queries first, then 3, then 4).
std::vector<Query> MakeXkgWorkload(const XkgDataset& data,
                                   const XkgWorkloadConfig& config);

// Tag-conjunction queries (?s <hasTag> <tag_i>) over tags of one topic.
std::vector<Query> MakeTwitterWorkload(const TwitterDataset& data,
                                       const TwitterWorkloadConfig& config);

}  // namespace specqp

#endif  // SPECQP_DATASETS_WORKLOAD_H_
