#ifndef SPECQP_DATASETS_TRIPLE_SINK_H_
#define SPECQP_DATASETS_TRIPLE_SINK_H_

#include <functional>

#include "rdf/term.h"

namespace specqp {

// Consumer of a generator's triple stream. The streaming entry points
// (StreamXkgTriples, StreamTwitterTriples) emit every triple of the
// deterministic dataset for a config through one of these instead of
// materialising a TripleStore, so a caller can keep any subset — a shard
// writer keeps only the triples hashing to its shard and a --scale 100
// graph never exists in memory as a whole, only dictionary + one shard.
using TripleSink =
    std::function<void(TermId s, TermId p, TermId o, double score)>;

}  // namespace specqp

#endif  // SPECQP_DATASETS_TRIPLE_SINK_H_
