#ifndef SPECQP_DATASETS_XKG_GENERATOR_H_
#define SPECQP_DATASETS_XKG_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "datasets/triple_sink.h"
#include "rdf/triple_store.h"
#include "relax/relaxation_index.h"

namespace specqp {

// Synthetic stand-in for the paper's XKG (YAGO2s + OpenIE, 105M triples),
// scaled to laptop size while preserving the properties the planner's
// decisions depend on:
//
//   - power-law triple scores ("number of inlinks into the subject"):
//     entity popularity follows a Zipf law and every triple about an entity
//     carries its popularity as score, so per-pattern score distributions
//     follow the 80/20 shape the two-bucket model assumes;
//   - a rich relaxation space: entities live in topical *domains*; each
//     domain has a cluster of overlapping rdf:type classes and per-attribute
//     value vocabularies, so co-instance containment mining yields >= 10
//     relaxations per query pattern with a wide weight spread;
//   - star-shaped query patterns (?s <rdf:type> <C>, ?s <plays> <guitar>)
//     with object constants, matching the paper's example queries.
struct XkgConfig {
  uint64_t seed = 42;
  // Workload scale tier: multiplies num_entities (1 = the laptop-sized
  // default, 10 = the first step toward the paper's full scale). Schema
  // breadth (domains, types, attributes) is unchanged, so queries and
  // relaxation structure stay comparable across tiers — posting lists just
  // get proportionally longer. Benches plumb --scale through here and
  // record it in the artifact knobs.
  size_t scale = 1;
  size_t num_entities = 40000;
  size_t num_domains = 24;
  size_t types_per_domain = 18;
  size_t num_attributes = 5;
  size_t values_per_attribute = 14;  // per domain, per attribute
  double entity_popularity_skew = 0.85;
  double domain_skew = 0.7;
  double type_skew = 0.8;
  // After the primary type, each further same-domain type is added with
  // this probability (geometric stop), up to max_types_per_entity.
  double extra_type_prob = 0.55;
  size_t max_types_per_entity = 6;
  double attribute_participation = 0.75;
  size_t max_values_per_attribute = 3;
  double value_skew = 0.9;
  // Probability of one additional out-of-domain type per entity (keeps the
  // relaxation graph from being block-diagonal).
  double cross_domain_noise = 0.05;
  // Degree-popularity correlation, a well-documented property of real KGs
  // that the paper's data shares: popular entities carry more facts (more
  // types, more attribute values), so pattern *intersections* are dominated
  // by high-scoring entities and relaxations only overtake the top-k when
  // the original query is recall-starved. An entity at popularity rank r
  // gets fact-density factor (1 - r/N)^popularity_correlation; 0 disables
  // the correlation.
  double popularity_correlation = 3.0;

  // Relaxation mining knobs.
  size_t miner_min_support = 3;
  size_t miner_max_rules = 25;
  double miner_min_weight = 0.02;
  double miner_weight_cap = 0.8;

  // Chain-relaxation extension (off by default; the paper's main
  // experiments use simple relaxations only). When enabled the generator
  // adds a <relatedTo> value graph — each attribute value is linked to its
  // nearest same-attribute values — and mines chain rules
  // (?s <attr> <v>) ~> (?s <attr> ?z)(?z <relatedTo> <v>).
  bool generate_value_graph = false;
  size_t related_per_value = 3;
  double chain_min_weight = 0.05;
  double chain_weight_cap = 0.9;
};

// Schema handles of the generated graph (shared by the materialised and
// streaming entry points).
struct XkgSchema {
  TermId type_predicate = kInvalidTermId;
  // Only set when config.generate_value_graph is true.
  TermId related_predicate = kInvalidTermId;
  std::vector<TermId> attribute_predicates;
  // domain_types[d] — the type TermIds of domain d.
  std::vector<std::vector<TermId>> domain_types;
  // attribute_values[d][a] — value TermIds of attribute a in domain d.
  std::vector<std::vector<std::vector<TermId>>> attribute_values;
};

struct XkgDataset {
  TripleStore store;
  RelaxationIndex rules;
  XkgSchema schema;
  // Legacy aliases kept so callers read data.type_predicate etc. directly.
  TermId type_predicate = kInvalidTermId;
  TermId related_predicate = kInvalidTermId;
  std::vector<TermId> attribute_predicates;
  std::vector<std::vector<TermId>> domain_types;
  std::vector<std::vector<std::vector<TermId>>> attribute_values;
};

// Streaming core: emits every triple of the deterministic dataset for
// `config` into `sink` (in generation order, duplicates included) and
// interns the FULL dictionary into `dict` — the same terms in the same
// order no matter which triples the sink keeps. That invariant is what
// lets tools/store_shard run one pass per shard, keep only the triples
// hashing to it, and still produce shard files whose TermIds (and
// dictionary sections, byte for byte) agree across the bundle, without
// the whole graph ever existing in memory.
XkgSchema StreamXkgTriples(const XkgConfig& config, Dictionary* dict,
                           const TripleSink& sink);

// Builds the store (finalized), mines relaxations, and reports the schema
// handles needed by the workload generator. Delegates triple generation
// to StreamXkgTriples, so the two entry points are bit-identical.
XkgDataset GenerateXkg(const XkgConfig& config);

}  // namespace specqp

#endif  // SPECQP_DATASETS_XKG_GENERATOR_H_
