#include "datasets/xkg_generator.h"

#include <cmath>

#include "relax/miner.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/zipf.h"

namespace specqp {

XkgSchema StreamXkgTriples(const XkgConfig& config, Dictionary* dict,
                           const TripleSink& sink) {
  SPECQP_CHECK(dict != nullptr);
  SPECQP_CHECK(config.num_entities > 0 && config.num_domains > 0);
  SPECQP_CHECK(config.types_per_domain >= 2);
  SPECQP_CHECK(config.scale >= 1);
  // Scale tier: more entities over the same schema (see XkgConfig::scale).
  const size_t num_entities = config.num_entities * config.scale;

  Rng rng(config.seed);
  XkgSchema schema;

  // --- schema terms ---------------------------------------------------------
  schema.type_predicate = dict->Intern("rdf:type");
  static const char* kAttributeNames[] = {"plays",    "locatedIn", "memberOf",
                                          "wonAward", "activeIn",  "worksAt",
                                          "speaks",   "produced"};
  for (size_t a = 0; a < config.num_attributes; ++a) {
    const std::string name =
        (a < std::size(kAttributeNames))
            ? std::string(kAttributeNames[a])
            : StrFormat("attribute%zu", a);
    schema.attribute_predicates.push_back(dict->Intern(name));
  }

  schema.domain_types.resize(config.num_domains);
  schema.attribute_values.resize(config.num_domains);
  for (size_t d = 0; d < config.num_domains; ++d) {
    for (size_t t = 0; t < config.types_per_domain; ++t) {
      schema.domain_types[d].push_back(
          dict->Intern(StrFormat("domain%zu_type%zu", d, t)));
    }
    schema.attribute_values[d].resize(config.num_attributes);
    for (size_t a = 0; a < config.num_attributes; ++a) {
      for (size_t v = 0; v < config.values_per_attribute; ++v) {
        schema.attribute_values[d][a].push_back(
            dict->Intern(StrFormat("domain%zu_attr%zu_value%zu", d, a, v)));
      }
    }
  }

  // --- entity popularity ("inlink counts") ----------------------------------
  // Popularity rank is a random permutation of entity ids so popular
  // entities are spread across domains.
  std::vector<uint32_t> rank_of(num_entities);
  for (size_t e = 0; e < num_entities; ++e) {
    rank_of[e] = static_cast<uint32_t>(e);
  }
  rng.Shuffle(&rank_of);
  auto popularity = [&](size_t e) {
    // Power-law inlink count in [1, ~1e5].
    return std::max(
        1.0, 1e5 / std::pow(static_cast<double>(rank_of[e]) + 1.0,
                            config.entity_popularity_skew));
  };

  const ZipfDistribution domain_dist(config.num_domains, config.domain_skew);
  const ZipfDistribution type_dist(config.types_per_domain, config.type_skew);
  const ZipfDistribution value_dist(config.values_per_attribute,
                                    config.value_skew);

  // --- entities and their triples -------------------------------------------
  for (size_t e = 0; e < num_entities; ++e) {
    const TermId entity = dict->Intern(StrFormat("entity%zu", e));
    const double score = popularity(e);
    const size_t domain = domain_dist.Sample(&rng);
    // Fact-density factor: 1 for the most popular entity, ~0 for the tail.
    const double density =
        config.popularity_correlation <= 0.0
            ? 1.0
            : std::pow(1.0 - static_cast<double>(rank_of[e]) /
                                 static_cast<double>(num_entities),
                       config.popularity_correlation);

    // rdf:type triples: a primary type plus a geometric number of extra
    // same-domain types — this overlap is what the relaxation miner feeds
    // on. Popular entities accumulate more types.
    size_t num_types = 1;
    while (num_types < config.max_types_per_entity &&
           rng.NextBool(config.extra_type_prob * (0.3 + 0.7 * density))) {
      ++num_types;
    }
    for (size_t i = 0; i < num_types; ++i) {
      const size_t t = type_dist.Sample(&rng);
      sink(entity, schema.type_predicate, schema.domain_types[domain][t],
           score);
    }
    if (rng.NextBool(config.cross_domain_noise)) {
      const size_t other = rng.NextBounded(config.num_domains);
      const size_t t = type_dist.Sample(&rng);
      sink(entity, schema.type_predicate, schema.domain_types[other][t],
           score);
    }

    // Attribute triples within the entity's domain vocabulary; popular
    // entities participate in more attributes with more values each.
    for (size_t a = 0; a < config.num_attributes; ++a) {
      if (!rng.NextBool(config.attribute_participation *
                        (0.4 + 0.6 * density))) {
        continue;
      }
      const size_t value_span =
          1 + static_cast<size_t>(
                  density *
                  static_cast<double>(config.max_values_per_attribute - 1));
      const size_t num_values = 1 + rng.NextBounded(value_span);
      for (size_t v = 0; v < num_values; ++v) {
        const size_t value = value_dist.Sample(&rng);
        sink(entity, schema.attribute_predicates[a],
             schema.attribute_values[domain][a][value], score);
      }
    }
  }

  // Optional value graph for the chain-relaxation extension: each value is
  // related to its nearest same-attribute neighbours (value indices are
  // popularity-ordered, so neighbours co-occur on similar entities).
  if (config.generate_value_graph) {
    const TermId related = dict->Intern("relatedTo");
    schema.related_predicate = related;
    for (size_t d = 0; d < config.num_domains; ++d) {
      for (size_t a = 0; a < config.num_attributes; ++a) {
        const auto& values = schema.attribute_values[d][a];
        for (size_t v = 0; v < values.size(); ++v) {
          for (size_t j = 1; j <= config.related_per_value; ++j) {
            const size_t other = (v + j) % values.size();
            if (other == v) continue;
            sink(values[other], related, values[v], 1.0);
          }
        }
      }
    }
  }

  return schema;
}

XkgDataset GenerateXkg(const XkgConfig& config) {
  XkgDataset data;
  TripleStore& store = data.store;
  data.schema = StreamXkgTriples(
      config, &store.dict(),
      [&store](TermId s, TermId p, TermId o, double score) {
        store.AddEncoded(s, p, o, score);
      });
  data.type_predicate = data.schema.type_predicate;
  data.related_predicate = data.schema.related_predicate;
  data.attribute_predicates = data.schema.attribute_predicates;
  data.domain_types = data.schema.domain_types;
  data.attribute_values = data.schema.attribute_values;

  store.Finalize();

  // --- relaxation mining -----------------------------------------------------
  MinerOptions miner;
  miner.min_support = config.miner_min_support;
  miner.max_rules_per_pattern = config.miner_max_rules;
  miner.min_weight = config.miner_min_weight;
  miner.weight_cap = config.miner_weight_cap;
  Status status =
      MineObjectCooccurrence(store, data.type_predicate, miner, &data.rules);
  SPECQP_CHECK(status.ok()) << status.ToString();
  for (TermId predicate : data.attribute_predicates) {
    status = MineObjectCooccurrence(store, predicate, miner, &data.rules);
    SPECQP_CHECK(status.ok()) << status.ToString();
  }

  if (config.generate_value_graph) {
    ChainMinerOptions chain;
    chain.min_weight = config.chain_min_weight;
    chain.weight_cap = config.chain_weight_cap;
    for (TermId predicate : data.attribute_predicates) {
      status = MineChainRelaxations(store, predicate, data.related_predicate,
                                    chain, &data.rules);
      SPECQP_CHECK(status.ok()) << status.ToString();
    }
  }

  SPECQP_LOG(Info) << "XKG generated: " << store.size() << " triples, "
                   << store.dict().size() << " terms, "
                   << data.rules.total_rules() << " relaxation rules over "
                   << data.rules.num_domains() << " patterns";
  return data;
}

}  // namespace specqp
