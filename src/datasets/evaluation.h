#ifndef SPECQP_DATASETS_EVALUATION_H_
#define SPECQP_DATASETS_EVALUATION_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/exhaustive.h"
#include "query/query.h"

namespace specqp {

// Per-query quality metrics (section 4.3), comparing Spec-QP against the
// true top-k derived by the exhaustive oracle (which TriniT provably
// matches — enforced by the integration tests).
struct QualityMetrics {
  // |Spec-QP top-k ∩ true top-k| / min(k, |true answers|). Precision and
  // recall coincide (same denominator k).
  double precision = 0.0;
  // Mean / stddev of |score_spec(rank) - score_true(rank)| over ranks.
  double score_error_mean = 0.0;
  double score_error_std = 0.0;
  // Mean percentage deviation relative to the true score at each rank.
  double score_error_pct = 0.0;
  // Did PLANGEN's singleton set exactly equal the set of patterns whose
  // relaxations are required for the true top-k?
  bool prediction_exact = false;
  size_t required_relaxations = 0;   // ground truth set size
  size_t predicted_relaxations = 0;  // PLANGEN's singleton count
  uint64_t true_answer_count = 0;    // answers in the relaxation space
};

QualityMetrics EvaluateQuality(Engine& engine, const ExhaustiveEvaluator& oracle,
                               const Query& query, size_t k);

// Same, against a pre-computed oracle result (lets callers evaluate several
// values of k without re-running the exhaustive evaluation).
QualityMetrics EvaluateQualityWithTruth(
    Engine& engine, const ExhaustiveEvaluator::EvalResult& truth,
    const Query& query, size_t k);

// Per-query efficiency measurements mirroring the paper's methodology
// (section 4.4): caches warmed, `runs` consecutive executions per strategy,
// reported value = average of the last `avg_last`.
struct EfficiencyMetrics {
  double trinit_ms = 0.0;
  double spec_ms = 0.0;  // includes Spec-QP planning time
  double spec_plan_ms = 0.0;
  uint64_t trinit_objects = 0;
  uint64_t spec_objects = 0;
  size_t patterns_relaxed = 0;  // by the Spec-QP plan
  // Answers produced and full operator counters of the last measured run,
  // for machine-readable bench artifacts. The counters are deterministic
  // across runs; the embedded plan_ms/exec_ms are single last-run samples
  // and thus noisier than the averaged trinit_ms/spec_ms above.
  uint64_t trinit_answers = 0;
  uint64_t spec_answers = 0;
  ExecStats trinit_stats;
  ExecStats spec_stats;
};

EfficiencyMetrics MeasureEfficiency(Engine& engine, const Query& query,
                                    size_t k, int runs = 5, int avg_last = 3);

// Simple aggregate helpers for the benchmark tables.
struct Aggregate {
  double sum = 0.0;
  uint64_t count = 0;
  void Add(double v) {
    sum += v;
    ++count;
  }
  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

}  // namespace specqp

#endif  // SPECQP_DATASETS_EVALUATION_H_
