#include "datasets/workload.h"

#include <algorithm>
#include <unordered_set>

#include "core/exhaustive.h"
#include "stats/selectivity.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/zipf.h"

namespace specqp {

namespace {

// Builds a star query: one subject variable, each pattern (?s <p_i> <o_i>).
Query MakeStarQuery(const std::vector<std::pair<TermId, TermId>>& po_pairs) {
  Query query;
  const VarId s = query.GetOrAddVariable("s");
  for (const auto& [p, o] : po_pairs) {
    query.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(p),
                                   PatternTerm::Const(o)));
  }
  query.AddProjection(s);
  return query;
}

}  // namespace

std::vector<Query> MakeXkgWorkload(const XkgDataset& data,
                                   const XkgWorkloadConfig& config) {
  Rng rng(config.seed);
  SelectivityEstimator exact(&data.store, SelectivityEstimator::Mode::kExact);
  std::vector<Query> workload;

  const size_t num_domains = data.domain_types.size();
  const ZipfDistribution domain_dist(num_domains, 0.7);

  for (size_t num_patterns = 2; num_patterns <= 4; ++num_patterns) {
    size_t made = 0;
    size_t attempts = 0;
    const size_t budget =
        config.max_attempts_per_query * config.queries_per_size;
    // Per-query fallback: after this many failed attempts for one query,
    // drop the cardinality band and accept anything >= the minimum.
    const size_t band_budget = config.max_attempts_per_query / 2;
    size_t attempts_this_query = 0;
    while (made < config.queries_per_size && attempts < budget) {
      ++attempts;
      ++attempts_this_query;
      const size_t domain = domain_dist.Sample(&rng);

      // Candidate (predicate, object) pairs from this domain with enough
      // relaxations.
      std::vector<std::pair<TermId, TermId>> pool;
      for (TermId type : data.domain_types[domain]) {
        PatternKey key{kInvalidTermId, data.type_predicate, type};
        if (data.rules.NumRulesFor(key) >= config.min_relaxations) {
          pool.emplace_back(data.type_predicate, type);
        }
      }
      for (size_t a = 0; a < data.attribute_predicates.size(); ++a) {
        for (TermId value : data.attribute_values[domain][a]) {
          PatternKey key{kInvalidTermId, data.attribute_predicates[a], value};
          if (data.rules.NumRulesFor(key) >= config.min_relaxations) {
            pool.emplace_back(data.attribute_predicates[a], value);
          }
        }
      }
      if (pool.size() < num_patterns) continue;

      rng.Shuffle(&pool);
      pool.resize(num_patterns);
      Query query = MakeStarQuery(pool);

      const uint64_t original_answers = exact.ExactQueryCardinality(query);
      if (original_answers < config.min_original_answers) continue;
      if (!config.cardinality_bands.empty() &&
          attempts_this_query <= band_budget) {
        const auto& band = config.cardinality_bands[workload.size() %
                                                    config.cardinality_bands
                                                        .size()];
        if (original_answers < band.first || original_answers > band.second) {
          continue;
        }
      }
      workload.push_back(std::move(query));
      ++made;
      attempts_this_query = 0;
    }
    SPECQP_CHECK(made == config.queries_per_size)
        << "XKG workload generation exhausted attempts for " << num_patterns
        << "-pattern queries (made " << made << "); loosen the generator or "
        << "workload constraints";
  }
  return workload;
}

std::vector<Query> MakeTwitterWorkload(const TwitterDataset& data,
                                       const TwitterWorkloadConfig& config) {
  Rng rng(config.seed);
  ExhaustiveEvaluator oracle(&data.store, &data.rules);
  std::vector<Query> workload;

  const size_t num_topics = data.topic_tags.size();
  const ZipfDistribution topic_dist(num_topics, 0.8);

  for (size_t num_patterns = 2; num_patterns <= 3; ++num_patterns) {
    size_t made = 0;
    size_t attempts = 0;
    const size_t budget =
        config.max_attempts_per_query * config.queries_per_size;
    while (made < config.queries_per_size && attempts < budget) {
      ++attempts;
      const size_t topic = topic_dist.Sample(&rng);

      // "Most frequent tags": prefer low tag indices (tag popularity within
      // a topic is Zipf by construction), requiring the relaxation minimum.
      std::vector<std::pair<TermId, TermId>> pool;
      for (TermId tag : data.topic_tags[topic]) {
        PatternKey key{kInvalidTermId, data.has_tag, tag};
        if (data.rules.NumRulesFor(key) >= config.min_relaxations) {
          pool.emplace_back(data.has_tag, tag);
        }
      }
      if (pool.size() < num_patterns) continue;
      // Bias towards the head of the (popularity-ordered) pool.
      std::vector<std::pair<TermId, TermId>> chosen;
      std::unordered_set<TermId> used;
      size_t guard = 0;
      while (chosen.size() < num_patterns && guard++ < 64) {
        const size_t idx = std::min<size_t>(
            rng.NextBounded(pool.size()), rng.NextBounded(pool.size()));
        if (used.insert(pool[idx].second).second) {
          chosen.push_back(pool[idx]);
        }
      }
      if (chosen.size() < num_patterns) continue;

      Query query = MakeStarQuery(chosen);
      if (oracle.Evaluate(query).answers.size() < config.min_relaxed_answers) {
        continue;
      }
      workload.push_back(std::move(query));
      ++made;
    }
    SPECQP_CHECK(made == config.queries_per_size)
        << "Twitter workload generation exhausted attempts for "
        << num_patterns << "-pattern queries (made " << made << ")";
  }
  return workload;
}

}  // namespace specqp
