#ifndef SPECQP_DATASETS_TWITTER_GENERATOR_H_
#define SPECQP_DATASETS_TWITTER_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "datasets/triple_sink.h"
#include "rdf/triple_store.h"
#include "relax/relaxation_index.h"

namespace specqp {

// Synthetic stand-in for the paper's Twitter dataset: triples
// <tweetId, hasTag, term> scored by the tweet's retweet count, with
// relaxations mined from tag co-occurrence using exactly the paper's weight
// formula w = #tweets(T1 ∧ T2) / #tweets(T1) (section 4.2).
//
// Tags belong to trending *topics*; a tweet draws a topic and then tags
// from it (plus global noise), so tags within a topic co-occur strongly —
// giving each frequent tag >= 5 usable relaxations — while conjunctions of
// 2-3 tags are sparse, reproducing the regime in which most Twitter queries
// need all their patterns relaxed (Table 3).
struct TwitterConfig {
  uint64_t seed = 4217;
  // Workload scale tier: multiplies num_tweets (1 = the laptop-sized
  // default, 10 = the first step toward the paper's full scale). The tag
  // vocabulary is unchanged, so co-occurrence structure stays comparable
  // across tiers. Benches plumb --scale through here and record it in the
  // artifact knobs.
  size_t scale = 1;
  size_t num_tweets = 120000;
  size_t num_topics = 50;
  size_t tags_per_topic = 40;
  double topic_skew = 0.8;
  double tag_skew = 1.0;
  size_t min_tags_per_tweet = 2;
  size_t max_tags_per_tweet = 6;
  // Probability that a tag is drawn from the global vocabulary instead of
  // the tweet's topic.
  double global_noise = 0.10;
  double retweet_skew = 1.05;

  size_t miner_min_support = 3;
  size_t miner_max_rules = 20;
  double miner_min_weight = 0.02;
  double miner_weight_cap = 0.95;
};

// Schema handles of the generated graph (shared by the materialised and
// streaming entry points).
struct TwitterSchema {
  TermId has_tag = kInvalidTermId;
  // topic_tags[z] — tag TermIds of topic z, hottest topic first.
  std::vector<std::vector<TermId>> topic_tags;
};

struct TwitterDataset {
  TripleStore store;
  RelaxationIndex rules;
  TwitterSchema schema;
  // Legacy aliases kept so callers read data.has_tag etc. directly.
  TermId has_tag = kInvalidTermId;
  std::vector<std::vector<TermId>> topic_tags;
};

// Streaming core: emits every triple of the deterministic dataset for
// `config` into `sink` (generation order) while interning the FULL
// dictionary into `dict` — identical terms in identical order no matter
// which triples the sink keeps, so per-shard passes in tools/store_shard
// produce byte-identical dictionary sections without materialising the
// graph (memory stays at dictionary + one shard's triples).
TwitterSchema StreamTwitterTriples(const TwitterConfig& config,
                                   Dictionary* dict, const TripleSink& sink);

// Builds the store (finalized) and mines tag co-occurrence relaxations.
// Delegates triple generation to StreamTwitterTriples, so the two entry
// points are bit-identical.
TwitterDataset GenerateTwitter(const TwitterConfig& config);

}  // namespace specqp

#endif  // SPECQP_DATASETS_TWITTER_GENERATOR_H_
