#include "datasets/evaluation.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "topk/scored_row.h"
#include "util/logging.h"

namespace specqp {

QualityMetrics EvaluateQuality(Engine& engine,
                               const ExhaustiveEvaluator& oracle,
                               const Query& query, size_t k) {
  return EvaluateQualityWithTruth(engine, oracle.Evaluate(query), query, k);
}

QualityMetrics EvaluateQualityWithTruth(
    Engine& engine, const ExhaustiveEvaluator::EvalResult& truth,
    const Query& query, size_t k) {
  QualityMetrics metrics;
  metrics.true_answer_count = truth.answers.size();

  // Unified request path (immediate admission: the harness is a single
  // synchronous caller measuring one engine).
  QueryRequest request = QueryRequest::FromQuery(query, k, Strategy::kSpecQp);
  request.admission = QueryRequest::Admission::kImmediate;
  const QueryResponse spec = engine.Submit(std::move(request)).get();
  SPECQP_CHECK(spec.ok()) << spec.status.ToString();

  // Precision (== recall): overlap of binding sets at cutoff k.
  const size_t denom = std::min(k, truth.answers.size());
  if (denom > 0) {
    std::unordered_set<std::vector<TermId>, BindingsHash> truth_set;
    for (size_t i = 0; i < denom; ++i) {
      truth_set.insert(truth.answers[i].bindings);
    }
    size_t hits = 0;
    for (size_t i = 0; i < spec.rows.size() && i < k; ++i) {
      if (truth_set.count(spec.rows[i].bindings) > 0) ++hits;
    }
    metrics.precision = static_cast<double>(hits) / static_cast<double>(denom);
  } else {
    metrics.precision = 1.0;  // no true answers and nothing to miss
  }

  // Rank-wise score deviation over the ranks both sides produced.
  const size_t ranks = std::min(denom, spec.rows.size());
  if (ranks > 0) {
    std::vector<double> errors(ranks);
    double sum = 0.0;
    double pct_sum = 0.0;
    for (size_t i = 0; i < ranks; ++i) {
      const double true_score = truth.answers[i].score;
      errors[i] = std::abs(spec.rows[i].score - true_score);
      sum += errors[i];
      if (true_score > 0.0) pct_sum += errors[i] / true_score;
    }
    metrics.score_error_mean = sum / static_cast<double>(ranks);
    metrics.score_error_pct = 100.0 * pct_sum / static_cast<double>(ranks);
    double var = 0.0;
    for (double e : errors) {
      var += (e - metrics.score_error_mean) * (e - metrics.score_error_mean);
    }
    metrics.score_error_std = std::sqrt(var / static_cast<double>(ranks));
  }

  // Prediction accuracy: PLANGEN's singleton set vs the oracle's required
  // set ("could identify exactly only these relaxations", Table 3).
  const std::vector<size_t> required = truth.RequiredRelaxations(k);
  std::vector<size_t> predicted = spec.plan.singletons;
  std::sort(predicted.begin(), predicted.end());
  metrics.required_relaxations = required.size();
  metrics.predicted_relaxations = predicted.size();
  metrics.prediction_exact = (predicted == required);
  return metrics;
}

EfficiencyMetrics MeasureEfficiency(Engine& engine, const Query& query,
                                    size_t k, int runs, int avg_last) {
  SPECQP_CHECK(runs >= avg_last && avg_last >= 1);
  EfficiencyMetrics metrics;
  engine.Warm(query);

  auto measure = [&](Strategy strategy, double* out_ms, uint64_t* out_objects,
                     double* out_plan_ms, size_t* out_relaxed,
                     uint64_t* out_answers, ExecStats* out_stats) {
    double total_ms = 0.0;
    double total_plan = 0.0;
    uint64_t objects = 0;
    size_t relaxed = 0;
    for (int r = 0; r < runs; ++r) {
      QueryRequest request = QueryRequest::FromQuery(query, k, strategy);
      request.admission = QueryRequest::Admission::kImmediate;
      const QueryResponse result = engine.Submit(std::move(request)).get();
      SPECQP_CHECK(result.ok()) << result.status.ToString();
      if (r >= runs - avg_last) {
        total_ms += result.stats.plan_ms + result.stats.exec_ms;
        total_plan += result.stats.plan_ms;
        objects = result.stats.answer_objects;  // deterministic per run
        relaxed = result.plan.num_relaxed();
        *out_answers = result.rows.size();
        *out_stats = result.stats;
      }
    }
    *out_ms = total_ms / avg_last;
    if (out_plan_ms != nullptr) *out_plan_ms = total_plan / avg_last;
    *out_objects = objects;
    if (out_relaxed != nullptr) *out_relaxed = relaxed;
  };

  measure(Strategy::kTrinit, &metrics.trinit_ms, &metrics.trinit_objects,
          nullptr, nullptr, &metrics.trinit_answers, &metrics.trinit_stats);
  measure(Strategy::kSpecQp, &metrics.spec_ms, &metrics.spec_objects,
          &metrics.spec_plan_ms, &metrics.patterns_relaxed,
          &metrics.spec_answers, &metrics.spec_stats);
  return metrics;
}

}  // namespace specqp
