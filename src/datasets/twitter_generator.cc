#include "datasets/twitter_generator.h"

#include <cmath>
#include <unordered_set>

#include "relax/miner.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/zipf.h"

namespace specqp {

TwitterSchema StreamTwitterTriples(const TwitterConfig& config,
                                   Dictionary* dict, const TripleSink& sink) {
  SPECQP_CHECK(dict != nullptr);
  SPECQP_CHECK(config.num_tweets > 0 && config.num_topics > 0);
  SPECQP_CHECK(config.tags_per_topic >= 2);
  SPECQP_CHECK(config.min_tags_per_tweet >= 1 &&
               config.min_tags_per_tweet <= config.max_tags_per_tweet);
  SPECQP_CHECK(config.scale >= 1);
  // Scale tier: more tweets over the same tag vocabulary (see
  // TwitterConfig::scale).
  const size_t num_tweets = config.num_tweets * config.scale;

  Rng rng(config.seed);
  TwitterSchema schema;

  schema.has_tag = dict->Intern("hasTag");
  schema.topic_tags.resize(config.num_topics);
  for (size_t z = 0; z < config.num_topics; ++z) {
    for (size_t t = 0; t < config.tags_per_topic; ++t) {
      schema.topic_tags[z].push_back(
          dict->Intern(StrFormat("#topic%zu_tag%zu", z, t)));
    }
  }

  // Retweet counts: power law over a random permutation of tweets.
  std::vector<uint32_t> rank_of(num_tweets);
  for (size_t i = 0; i < num_tweets; ++i) {
    rank_of[i] = static_cast<uint32_t>(i);
  }
  rng.Shuffle(&rank_of);
  auto retweets = [&](size_t tweet) {
    return std::max(
        1.0, 5e4 / std::pow(static_cast<double>(rank_of[tweet]) + 1.0,
                            config.retweet_skew));
  };

  const ZipfDistribution topic_dist(config.num_topics, config.topic_skew);
  const ZipfDistribution tag_dist(config.tags_per_topic, config.tag_skew);

  for (size_t i = 0; i < num_tweets; ++i) {
    const TermId tweet = dict->Intern(StrFormat("tweet%zu", i));
    const double score = retweets(i);
    const size_t topic = topic_dist.Sample(&rng);
    const size_t span =
        config.max_tags_per_tweet - config.min_tags_per_tweet + 1;
    const size_t num_tags = config.min_tags_per_tweet + rng.NextBounded(span);

    std::unordered_set<TermId> used;
    for (size_t t = 0; t < num_tags; ++t) {
      TermId tag;
      if (rng.NextBool(config.global_noise)) {
        const size_t other = topic_dist.Sample(&rng);
        tag = schema.topic_tags[other][tag_dist.Sample(&rng)];
      } else {
        tag = schema.topic_tags[topic][tag_dist.Sample(&rng)];
      }
      if (!used.insert(tag).second) continue;  // duplicate tag in this tweet
      sink(tweet, schema.has_tag, tag, score);
    }
  }

  return schema;
}

TwitterDataset GenerateTwitter(const TwitterConfig& config) {
  TwitterDataset data;
  TripleStore& store = data.store;
  data.schema = StreamTwitterTriples(
      config, &store.dict(),
      [&store](TermId s, TermId p, TermId o, double score) {
        store.AddEncoded(s, p, o, score);
      });
  data.has_tag = data.schema.has_tag;
  data.topic_tags = data.schema.topic_tags;

  store.Finalize();

  MinerOptions miner;
  miner.min_support = config.miner_min_support;
  miner.max_rules_per_pattern = config.miner_max_rules;
  miner.min_weight = config.miner_min_weight;
  miner.weight_cap = config.miner_weight_cap;
  const Status status =
      MineObjectCooccurrence(store, data.has_tag, miner, &data.rules);
  SPECQP_CHECK(status.ok()) << status.ToString();

  SPECQP_LOG(Info) << "Twitter generated: " << store.size() << " triples, "
                   << store.dict().size() << " terms, "
                   << data.rules.total_rules() << " relaxation rules";
  return data;
}

}  // namespace specqp
