// Reproduces Figure 9: runtimes and memory of TriniT (T) vs Spec-QP (S)
// over the Twitter workload, grouped by the number of triple patterns the
// Spec-QP plan relaxed (0-3), for k in {10, 15, 20}.
//
// Paper shape: mirrors Figure 7 — most Twitter queries end up with all
// patterns relaxed, where S ~= T plus a small planning overhead.

#include "bench_common.h"

int main() {
  using namespace specqp;
  using namespace specqp::bench;
  const TwitterBundle& twitter = GetTwitter();
  Engine engine(&twitter.data.store, &twitter.data.rules);
  RunEfficiencyFigure(
      "Figure 9: Twitter runtimes & memory, T vs S, by #patterns relaxed "
      "by Spec-QP",
      engine, twitter.workload, GroupBy::kPatternsRelaxed);
  return 0;
}
