// Reproduces Figure 9: runtimes and memory of TriniT (T) vs Spec-QP (S)
// over the Twitter workload, grouped by the number of triple patterns the
// Spec-QP plan relaxed (0-3), for k in {10, 15, 20}.
//
// Paper shape: mirrors Figure 7 — most Twitter queries end up with all
// patterns relaxed, where S ~= T plus a small planning overhead.

#include "bench_common.h"

namespace specqp::bench {
namespace {

void Run(Json& out) {
  const TwitterBundle& twitter = GetTwitter();
  out.Set("dataset", "twitter");
  out.Set("num_triples", twitter.data.store.size());
  out.Set("num_queries", twitter.workload.size());
  Engine engine(&twitter.data.store, &twitter.data.rules, MakeEngineOptions());
  RunEfficiencyFigure(
      "Figure 9: Twitter runtimes & memory, T vs S, by #patterns relaxed "
      "by Spec-QP",
      engine, twitter.workload, GroupBy::kPatternsRelaxed, out);
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "fig9_twitter_by_relaxed",
                                  &specqp::bench::Run);
}
