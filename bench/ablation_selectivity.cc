// Ablation A2 (paper footnote 3): the paper plans with *exact* join
// selectivities. This bench swaps in the classical independence-assumption
// estimate (phi = prod 1/max(distinct)) and measures the impact on
// PLANGEN's prediction accuracy and planning time over the XKG workload.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace specqp::bench {
namespace {

struct ModeResult {
  std::map<size_t, double> accuracy_by_k;
  double mean_plan_ms = 0.0;
};

ModeResult RunMode(const XkgBundle& xkg, SelectivityEstimator::Mode mode,
                   const std::vector<std::map<size_t, std::vector<size_t>>>&
                       required_by_query) {
  EngineOptions options = MakeEngineOptions();
  options.selectivity_mode = mode;
  Engine engine(&xkg.data.store, &xkg.data.rules, options);

  ModeResult result;
  std::map<size_t, size_t> correct;
  double plan_ms_total = 0.0;
  size_t plans = 0;
  for (size_t qi = 0; qi < xkg.workload.size(); ++qi) {
    const Query& query = xkg.workload[qi];
    engine.Warm(query);
    for (size_t k : kTopKs) {
      WallTimer timer;
      QueryPlan plan = engine.PlanOnly(query, k);
      plan_ms_total += timer.ElapsedMillis();
      ++plans;
      std::vector<size_t> predicted = plan.singletons;
      std::sort(predicted.begin(), predicted.end());
      if (predicted == required_by_query[qi].at(k)) ++correct[k];
    }
  }
  for (size_t k : kTopKs) {
    result.accuracy_by_k[k] = static_cast<double>(correct[k]) /
                              static_cast<double>(xkg.workload.size());
  }
  result.mean_plan_ms = plan_ms_total / static_cast<double>(plans);
  return result;
}

Json ModeJson(const char* name, const ModeResult& r) {
  Json j = Json::Object();
  j.Set("mode", name);
  Json& by_k = j.Set("accuracy_by_k", Json::Array());
  for (size_t k : kTopKs) {
    Json& e = by_k.Push(Json::Object());
    e.Set("k", k);
    e.Set("accuracy", r.accuracy_by_k.at(k));
  }
  j.Set("mean_plan_ms", r.mean_plan_ms);
  return j;
}

void Run(Json& out) {
  PrintTitle(
      "Ablation A2: exact join selectivity (paper) vs independence "
      "assumption — prediction accuracy vs planning cost");

  const XkgBundle& xkg = GetXkg();
  ExhaustiveEvaluator oracle(&xkg.data.store, &xkg.data.rules);
  std::vector<std::map<size_t, std::vector<size_t>>> required;
  required.reserve(xkg.workload.size());
  for (const Query& query : xkg.workload) {
    const auto truth = oracle.Evaluate(query);
    std::map<size_t, std::vector<size_t>> by_k;
    for (size_t k : kTopKs) by_k[k] = truth.RequiredRelaxations(k);
    required.push_back(std::move(by_k));
  }

  const ModeResult exact =
      RunMode(xkg, SelectivityEstimator::Mode::kExact, required);
  const ModeResult pairwise =
      RunMode(xkg, SelectivityEstimator::Mode::kPairwiseExact, required);
  const ModeResult independence =
      RunMode(xkg, SelectivityEstimator::Mode::kIndependence, required);

  const std::vector<int> widths = {26, 12, 12, 12, 16};
  PrintRow({"selectivity", "acc k=10", "acc k=15", "acc k=20",
            "plan ms (mean)"},
           widths);
  PrintRule(widths);
  auto row = [&](const char* name, const ModeResult& r) {
    PrintRow({name, StrFormat("%.2f", r.accuracy_by_k.at(10)),
              StrFormat("%.2f", r.accuracy_by_k.at(15)),
              StrFormat("%.2f", r.accuracy_by_k.at(20)),
              StrFormat("%.4f", r.mean_plan_ms)},
             widths);
  };
  row("exact counts (paper)", exact);
  row("pairwise-exact chain", pairwise);
  row("independence", independence);

  Json& modes = out.Set("modes", Json::Array());
  modes.Push(ModeJson("exact", exact));
  modes.Push(ModeJson("pairwise_exact", pairwise));
  modes.Push(ModeJson("independence", independence));

  std::printf(
      "\nShape check: exact selectivities should match or beat the "
      "independence estimate on accuracy — they are what the paper's "
      "cardinality chain (m12 = m·m'·phi) assumes.\n");
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "ablation_selectivity",
                                  &specqp::bench::Run);
}
