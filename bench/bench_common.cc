#include "bench_common.h"

#include <cstdlib>
#include <cstring>
#include <memory>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace specqp::bench {

namespace {

struct BenchConfig {
  int threads = 0;             // EngineOptions::num_threads semantics
  size_t cache_budget_mb = 0;  // 0 = unbounded
  bool batch = false;          // measure batched runs over whole workloads
  size_t scale = 1;            // XKG/Twitter dataset scale tier (1, 10, ...)
  size_t shards = 4;           // bundle shard count for sharded variants
  size_t admit_batch = 16;     // EngineOptions::admission_max_batch
  double speculate_threshold = 0.0;  // EngineOptions::speculate_threshold
  std::string calibration_path;      // EngineOptions::calibration_path
  std::string fault_plan;            // EngineOptions::fault_plan
  bool degraded_reads = false;       // EngineOptions::degraded_reads
};
BenchConfig g_bench_config;

void PrintUsage(const std::string& name) {
  std::fprintf(stderr,
               "usage: %s [--json <path>] [--threads N] "
               "[--cache-budget-mb N] [--batch] [--scale N] "
               "[--admit-batch N]\n"
               "  --json <path>         write the machine-readable benchmark "
               "artifact to <path>\n"
               "  --threads N           engine execution threads "
               "(0 = $SPECQP_THREADS, default serial)\n"
               "  --cache-budget-mb N   posting-list cache budget "
               "(0 = unbounded)\n"
               "  --batch               additionally measure batched "
               "(BatchExecutor) workload execution\n"
               "  --scale N             dataset scale tier for the XKG/"
               "Twitter workloads (1 = default, 10 = 10x entities/tweets)\n"
               "  --admit-batch N       admission window size for "
               "Submit-driven engines (EngineOptions::admission_max_batch)\n"
               "  --shards N            shard count for sharded-bundle "
               "(SQPBNDL1) bench variants (default 4)\n"
               "  --speculate-threshold X  plan-racing confidence threshold "
               "(0 = off; > 1 forces a race whenever a runner-up exists)\n"
               "  --calibration-path P  estimator correction table fitted by "
               "scripts/fit_estimator_correction.py\n"
               "  --fault-plan P        deterministic fault-injection plan "
               "(seed=N;site=prob[@max], util/fault_injector.h)\n"
               "  --degraded-reads      serve partial answers from the "
               "surviving shards instead of kUnavailable\n",
               name.c_str());
}

// The commit the artifact was produced at, for cross-run comparability:
// $SPECQP_GIT_SHA wins (local runs), then CI's $GITHUB_SHA, else unknown.
std::string ResolveGitSha() {
  for (const char* var : {"SPECQP_GIT_SHA", "GITHUB_SHA"}) {
    const char* value = std::getenv(var);
    if (value != nullptr && value[0] != '\0') return value;
  }
  return "unknown";
}

// Parses a non-negative integer flag value; returns -1 on garbage.
long ParseNonNegative(const char* text) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) return -1;
  return value;
}

// Handles one `--flag N` / `--flag=N` occurrence for a non-negative int
// flag. Returns false (with *error set) when `argv[*i]` is not this flag;
// on a match, advances *i past a space-separated value and writes the
// parsed value through `out`, or prints the error and sets *error.
bool ParseIntFlag(const std::string& bench_name, const char* flag, int argc,
                  char** argv, int* i, long* out, bool* error) {
  const std::string_view arg = argv[*i];
  const std::string eq_form = std::string(flag) + "=";
  const char* text = nullptr;
  if (arg == flag) {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s requires a value\n", bench_name.c_str(),
                   flag);
      *error = true;
      return true;
    }
    text = argv[++*i];
  } else if (StartsWith(arg, eq_form)) {
    text = argv[*i] + eq_form.size();
  } else {
    return false;
  }
  const long value = ParseNonNegative(text);
  if (value < 0) {
    std::fprintf(stderr, "%s: %s requires a non-negative int\n",
                 bench_name.c_str(), flag);
    *error = true;
    return true;
  }
  *out = value;
  return true;
}

}  // namespace

void ApplyBenchConfig(EngineOptions* options) {
  options->num_threads = g_bench_config.threads;
  options->cache_budget_bytes = g_bench_config.cache_budget_mb * 1024 * 1024;
  options->admission_max_batch = g_bench_config.admit_batch;
  options->speculate_threshold = g_bench_config.speculate_threshold;
  options->calibration_path = g_bench_config.calibration_path;
  options->fault_plan = g_bench_config.fault_plan;
  options->degraded_reads = g_bench_config.degraded_reads;
}

size_t DatasetScale() { return g_bench_config.scale; }

size_t BenchShards() { return g_bench_config.shards; }

EngineOptions MakeEngineOptions() {
  EngineOptions options;
  ApplyBenchConfig(&options);
  return options;
}

bool BatchModeRequested() { return g_bench_config.batch; }

namespace {

Engine::QueryResult UnpackResponse(QueryResponse response) {
  Engine::QueryResult result;
  result.plan = std::move(response.plan);
  result.diagnostics = std::move(response.diagnostics);
  result.rows = std::move(response.rows);
  result.stats = response.stats;
  return result;
}

}  // namespace

Engine::QueryResult RunQuery(Engine& engine, const Query& query, size_t k,
                             Strategy strategy) {
  QueryRequest request = QueryRequest::FromQuery(query, k, strategy);
  request.admission = QueryRequest::Admission::kImmediate;
  QueryResponse response = engine.Submit(std::move(request)).get();
  SPECQP_CHECK(response.status.ok()) << response.status.ToString();
  return UnpackResponse(std::move(response));
}

Result<Engine::QueryResult> RunTextQuery(Engine& engine,
                                         const std::string& text, size_t k,
                                         Strategy strategy) {
  QueryRequest request = QueryRequest::FromText(text, k, strategy);
  request.admission = QueryRequest::Admission::kImmediate;
  QueryResponse response = engine.Submit(std::move(request)).get();
  if (!response.status.ok()) return response.status;
  return UnpackResponse(std::move(response));
}

std::vector<Engine::QueryResult> RunBatch(Engine& engine,
                                          std::span<const Query> queries,
                                          size_t k, Strategy strategy,
                                          BatchStats* batch_stats) {
  BatchExecutor batch(&engine);
  return batch.Execute(queries, k, strategy, batch_stats);
}

int BenchMain(int argc, char** argv, const std::string& name, BenchFn run) {
  std::string json_path;
  bool json_requested = false;
  long flag_value = 0;
  bool flag_error = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --json requires a path\n", name.c_str());
        PrintUsage(name);
        return 2;
      }
      json_requested = true;
      json_path = argv[++i];
    } else if (StartsWith(arg, "--json=")) {
      json_requested = true;
      json_path = arg.substr(std::strlen("--json="));
    } else if (ParseIntFlag(name, "--threads", argc, argv, &i, &flag_value,
                            &flag_error)) {
      if (flag_error) return 2;
      g_bench_config.threads = static_cast<int>(flag_value);
    } else if (ParseIntFlag(name, "--cache-budget-mb", argc, argv, &i,
                            &flag_value, &flag_error)) {
      if (flag_error) return 2;
      g_bench_config.cache_budget_mb = static_cast<size_t>(flag_value);
    } else if (ParseIntFlag(name, "--scale", argc, argv, &i, &flag_value,
                            &flag_error)) {
      if (flag_error) return 2;
      if (flag_value < 1) {
        std::fprintf(stderr, "%s: --scale requires a value >= 1\n",
                     name.c_str());
        return 2;
      }
      g_bench_config.scale = static_cast<size_t>(flag_value);
    } else if (ParseIntFlag(name, "--shards", argc, argv, &i, &flag_value,
                            &flag_error)) {
      if (flag_error) return 2;
      if (flag_value < 1) {
        std::fprintf(stderr, "%s: --shards requires a value >= 1\n",
                     name.c_str());
        return 2;
      }
      g_bench_config.shards = static_cast<size_t>(flag_value);
    } else if (ParseIntFlag(name, "--admit-batch", argc, argv, &i,
                            &flag_value, &flag_error)) {
      if (flag_error) return 2;
      if (flag_value < 1) {
        std::fprintf(stderr, "%s: --admit-batch requires a value >= 1\n",
                     name.c_str());
        return 2;
      }
      g_bench_config.admit_batch = static_cast<size_t>(flag_value);
    } else if (arg == "--speculate-threshold" ||
               StartsWith(arg, "--speculate-threshold=")) {
      const char* text = nullptr;
      if (arg == "--speculate-threshold") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: --speculate-threshold requires a value\n",
                       name.c_str());
          return 2;
        }
        text = argv[++i];
      } else {
        text = argv[i] + std::strlen("--speculate-threshold=");
      }
      char* end = nullptr;
      const double value = std::strtod(text, &end);
      if (end == text || *end != '\0' || !(value >= 0.0)) {
        std::fprintf(stderr,
                     "%s: --speculate-threshold requires a non-negative "
                     "number\n",
                     name.c_str());
        return 2;
      }
      g_bench_config.speculate_threshold = value;
    } else if (arg == "--calibration-path") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --calibration-path requires a path\n",
                     name.c_str());
        return 2;
      }
      g_bench_config.calibration_path = argv[++i];
    } else if (StartsWith(arg, "--calibration-path=")) {
      g_bench_config.calibration_path =
          arg.substr(std::strlen("--calibration-path="));
    } else if (arg == "--fault-plan") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --fault-plan requires a plan string\n",
                     name.c_str());
        return 2;
      }
      g_bench_config.fault_plan = argv[++i];
    } else if (StartsWith(arg, "--fault-plan=")) {
      g_bench_config.fault_plan = arg.substr(std::strlen("--fault-plan="));
    } else if (arg == "--degraded-reads") {
      g_bench_config.degraded_reads = true;
    } else if (arg == "--batch") {
      g_bench_config.batch = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(name);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", name.c_str(),
                   argv[i]);
      PrintUsage(name);
      return 2;
    }
  }
  if (json_requested && json_path.empty()) {
    std::fprintf(stderr, "%s: --json requires a non-empty path\n",
                 name.c_str());
    PrintUsage(name);
    return 2;
  }
  if (!json_path.empty()) {
    // Fail fast on an unwritable path: the figure benches run for minutes,
    // and discovering a bad path only at write time would discard the run.
    // Probe the .tmp sibling WriteJsonFile uses, so a pre-existing
    // artifact at json_path itself is never touched before success.
    const std::string probe_path = json_path + ".tmp";
    std::FILE* probe = std::fopen(probe_path.c_str(), "w");
    if (probe == nullptr) {
      std::fprintf(stderr, "%s: cannot open %s for writing\n", name.c_str(),
                   probe_path.c_str());
      return 1;
    }
    std::fclose(probe);
    std::remove(probe_path.c_str());
  }

  Json doc = Json::Object();
  doc.Set("bench", name);
  doc.Set("schema_version", 2);
  doc.Set("git_sha", ResolveGitSha());
  doc.Set("threads_requested", g_bench_config.threads);
  doc.Set("threads", ResolveNumThreads(g_bench_config.threads));
  doc.Set("cache_budget_mb", g_bench_config.cache_budget_mb);
  doc.Set("batch_mode", g_bench_config.batch);
  doc.Set("scale", g_bench_config.scale);
  // Shard count of any sharded-bundle variant the bench builds: a bundle's
  // open cost and per-shard counters are shaped by N, so runs only compare
  // at equal shard counts (compare_bench_json.py COMPARABILITY_KEYS).
  doc.Set("shard_count", g_bench_config.shards);
  // Admission knobs of every Submit-driven engine the bench builds; the
  // delay is the EngineOptions default (no CLI override yet).
  doc.Set("admission_max_batch", g_bench_config.admit_batch);
  doc.Set("admission_max_delay_ms", EngineOptions().admission_max_delay_ms);
  // Speculation / calibration knobs: racing changes the work profile and a
  // correction table changes every estimate, so two runs only compare when
  // these agree (scripts/compare_bench_json.py COMPARABILITY_KEYS).
  doc.Set("speculate_threshold", g_bench_config.speculate_threshold);
  doc.Set("calibration_path", g_bench_config.calibration_path);
  // Fault-tolerance knobs: an injection plan perturbs both runtimes and
  // answer counts, and degraded reads change which rows exist at all, so
  // artifacts only compare when these agree — and a run claiming no
  // faults must not report degraded or shed responses
  // (compare_bench_json.py enforces both).
  doc.Set("fault_plan", g_bench_config.fault_plan);
  doc.Set("degraded_reads", g_bench_config.degraded_reads);
  WallTimer timer;
  run(doc);
  doc.Set("total_seconds", timer.ElapsedSeconds());

  if (!json_path.empty()) {
    std::string error;
    if (!WriteJsonFile(json_path, doc, &error)) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), error.c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench] wrote %s\n", json_path.c_str());
  }
  return 0;
}

Json ExecStatsToJson(const ExecStats& stats) {
  Json j = Json::Object();
  j.Set("answer_objects", stats.answer_objects);
  j.Set("scan_rows", stats.scan_rows);
  j.Set("merge_rows", stats.merge_rows);
  j.Set("merge_duplicates", stats.merge_duplicates);
  j.Set("join_results", stats.join_results);
  j.Set("join_hash_probes", stats.join_hash_probes);
  j.Set("parallel_partitions", stats.parallel_partitions);
  j.Set("parallel_refill_rounds", stats.parallel_refill_rounds);
  j.Set("blocks_decoded", stats.blocks_decoded);
  j.Set("blocks_skipped", stats.blocks_skipped);
  j.Set("plans_raced", stats.plans_raced);
  j.Set("race_wins_by_runnerup", stats.race_wins_by_runnerup);
  j.Set("speculative_work_wasted_rows", stats.speculative_work_wasted_rows);
  j.Set("replans_triggered", stats.replans_triggered);
  j.Set("race_loser_abort_ms", stats.race_loser_abort_ms);
  j.Set("store_faults", stats.store_faults);
  j.Set("shards_failed", stats.shards_failed);
  j.Set("shards_total", stats.shards_total);
  j.Set("plan_ms", stats.plan_ms);
  j.Set("exec_ms", stats.exec_ms);
  return j;
}

Json CalibrationLogToJson(const CalibrationLog& log) {
  Json j = Json::Object();
  Json patterns = Json::Array();
  for (const CalibrationPatternRecord& record : log.PatternRecords()) {
    Json r = Json::Object();
    r.Set("signature", record.signature);
    r.Set("estimated_m", record.estimated_m);
    r.Set("actual_m", record.actual_m);
    patterns.Push(std::move(r));
  }
  Json queries = Json::Array();
  for (const CalibrationQueryRecord& record : log.QueryRecords()) {
    Json r = Json::Object();
    r.Set("estimated_cardinality", record.estimated_cardinality);
    r.Set("observed_join_results", record.observed_join_results);
    r.Set("plan", record.plan);
    r.Set("raced", record.raced);
    r.Set("runner_up_won", record.runner_up_won);
    queries.Push(std::move(r));
  }
  j.Set("patterns", std::move(patterns));
  j.Set("queries", std::move(queries));
  j.Set("dropped", log.dropped());
  j.Set("capacity", log.capacity());
  return j;
}

Json CacheStatsToJson(const PostingListCache& cache) {
  Json j = Json::Object();
  j.Set("hits", cache.hits());
  j.Set("misses", cache.misses());
  j.Set("evictions", cache.evictions());
  j.Set("resident_lists", cache.size());
  j.Set("resident_bytes", cache.bytes());
  j.Set("budget_bytes", cache.budget_bytes());
  return j;
}

Json BatchStatsToJson(const BatchStats& stats) {
  Json j = Json::Object();
  j.Set("batch_size", stats.batch_size);
  j.Set("distinct_queries", stats.distinct_queries);
  j.Set("distinct_patterns", stats.distinct_patterns);
  j.Set("shared_scan_hits", stats.shared_scan_hits);
  j.Set("shared_scan_misses", stats.shared_scan_misses);
  j.Set("lists_resolved", stats.lists_resolved);
  j.Set("lists_derived", stats.lists_derived);
  j.Set("base_scans", stats.base_scans);
  j.Set("patterns_expanded", stats.patterns_expanded);
  j.Set("stats_snapshot_patterns", stats.stats_snapshot_patterns);
  j.Set("prepare_ms", stats.prepare_ms);
  j.Set("plan_ms", stats.plan_ms);
  j.Set("exec_ms", stats.exec_ms);
  return j;
}

Json QualityMetricsToJson(const QualityMetrics& metrics) {
  Json j = Json::Object();
  j.Set("precision", metrics.precision);
  j.Set("score_error_mean", metrics.score_error_mean);
  j.Set("score_error_std", metrics.score_error_std);
  j.Set("score_error_pct", metrics.score_error_pct);
  j.Set("prediction_exact", metrics.prediction_exact);
  j.Set("required_relaxations", metrics.required_relaxations);
  j.Set("predicted_relaxations", metrics.predicted_relaxations);
  j.Set("true_answer_count", metrics.true_answer_count);
  return j;
}

namespace {

XkgBundle* BuildXkg() {
  WallTimer timer;
  auto* bundle = new XkgBundle;
  XkgConfig config;  // defaults: 40k entities, 24 domains, 18 types/domain
  config.scale = g_bench_config.scale;  // --scale tier (recorded in knobs)
  bundle->data = GenerateXkg(config);

  XkgWorkloadConfig workload;
  workload.seed = 71;
  workload.queries_per_size = 22;  // 66 ~ the paper's 65
  workload.min_relaxations = 10;
  bundle->workload = MakeXkgWorkload(bundle->data, workload);
  std::fprintf(stderr, "[bench] XKG ready: %zu triples, %zu queries (%.1fs)\n",
               bundle->data.store.size(), bundle->workload.size(),
               timer.ElapsedSeconds());
  return bundle;
}

TwitterBundle* BuildTwitter() {
  WallTimer timer;
  auto* bundle = new TwitterBundle;
  TwitterConfig config;  // defaults: 120k tweets, 50 topics
  config.scale = g_bench_config.scale;  // --scale tier (recorded in knobs)
  bundle->data = GenerateTwitter(config);

  TwitterWorkloadConfig workload;
  workload.seed = 73;
  workload.queries_per_size = 25;  // 50 queries as in the paper
  workload.min_relaxations = 5;
  bundle->workload = MakeTwitterWorkload(bundle->data, workload);
  std::fprintf(stderr,
               "[bench] Twitter ready: %zu triples, %zu queries (%.1fs)\n",
               bundle->data.store.size(), bundle->workload.size(),
               timer.ElapsedSeconds());
  return bundle;
}

}  // namespace

const XkgBundle& GetXkg() {
  static const XkgBundle* bundle = BuildXkg();
  return *bundle;
}

const TwitterBundle& GetTwitter() {
  static const TwitterBundle* bundle = BuildTwitter();
  return *bundle;
}

std::vector<QueryEvaluation> EvaluateWorkloadQuality(
    Engine& engine, const ExhaustiveEvaluator& oracle,
    const std::vector<Query>& workload) {
  std::vector<QueryEvaluation> evaluations;
  evaluations.reserve(workload.size());
  for (const Query& query : workload) {
    QueryEvaluation eval;
    eval.query = &query;
    eval.truth = oracle.Evaluate(query);
    for (size_t k : kTopKs) {
      eval.by_k[k] = EvaluateQualityWithTruth(engine, eval.truth, query, k);
    }
    evaluations.push_back(std::move(eval));
  }
  return evaluations;
}

std::vector<EfficiencyRecord> MeasureWorkloadEfficiency(
    Engine& engine, const std::vector<Query>& workload, size_t k) {
  std::vector<EfficiencyRecord> records;
  records.reserve(workload.size());
  for (const Query& query : workload) {
    EfficiencyRecord record;
    record.num_patterns = query.num_patterns();
    record.metrics = MeasureEfficiency(engine, query, k);
    record.patterns_relaxed = record.metrics.patterns_relaxed;
    records.push_back(record);
  }
  return records;
}

void RunEfficiencyFigure(const std::string& title, Engine& engine,
                         const std::vector<Query>& workload, GroupBy group_by,
                         Json& out) {
  PrintTitle(title);
  out.Set("title", title);
  out.Set("engine_threads", engine.num_threads());
  out.Set("group_by", group_by == GroupBy::kNumPatterns ? "num_patterns"
                                                        : "patterns_relaxed");
  Json& by_k = out.Set("by_k", Json::Array());
  for (size_t k : kTopKs) {
    const std::vector<EfficiencyRecord> records =
        MeasureWorkloadEfficiency(engine, workload, k);

    // Collect the group keys present.
    std::map<size_t, std::vector<const EfficiencyRecord*>> groups;
    for (const EfficiencyRecord& r : records) {
      const size_t key = group_by == GroupBy::kNumPatterns
                             ? r.num_patterns
                             : r.patterns_relaxed;
      groups[key].push_back(&r);
    }

    Json& k_json = by_k.Push(Json::Object());
    k_json.Set("k", k);
    Json& queries_json = k_json.Set("queries", Json::Array());
    for (size_t i = 0; i < records.size(); ++i) {
      const EfficiencyMetrics& m = records[i].metrics;
      Json& q = queries_json.Push(Json::Object());
      q.Set("query_index", i);
      q.Set("num_patterns", records[i].num_patterns);
      q.Set("patterns_relaxed", records[i].patterns_relaxed);
      q.Set("trinit_ms", m.trinit_ms);
      q.Set("spec_ms", m.spec_ms);
      q.Set("spec_plan_ms", m.spec_plan_ms);
      q.Set("trinit_objects", m.trinit_objects);
      q.Set("spec_objects", m.spec_objects);
      q.Set("trinit_answers", m.trinit_answers);
      q.Set("spec_answers", m.spec_answers);
      q.Set("trinit_stats", ExecStatsToJson(m.trinit_stats));
      q.Set("spec_stats", ExecStatsToJson(m.spec_stats));
    }
    Json& groups_json = k_json.Set("groups", Json::Array());

    PrintSubtitle(StrFormat("k=%zu", k));
    const std::vector<int> widths = {10, 8, 14, 14, 16, 16, 10};
    PrintRow({group_by == GroupBy::kNumPatterns ? "#TP" : "#relaxed",
              "queries", "T runtime ms", "S runtime ms", "T mem objects",
              "S mem objects", "S/T time"},
             widths);
    PrintRule(widths);
    for (const auto& [key, group] : groups) {
      Aggregate t_ms;
      Aggregate s_ms;
      Aggregate t_obj;
      Aggregate s_obj;
      for (const EfficiencyRecord* r : group) {
        t_ms.Add(r->metrics.trinit_ms);
        s_ms.Add(r->metrics.spec_ms);
        t_obj.Add(static_cast<double>(r->metrics.trinit_objects));
        s_obj.Add(static_cast<double>(r->metrics.spec_objects));
      }
      const double ratio =
          t_ms.Mean() > 0.0 ? s_ms.Mean() / t_ms.Mean() : 0.0;
      Json& g = groups_json.Push(Json::Object());
      g.Set("group_key", key);
      g.Set("queries", t_ms.count);
      g.Set("trinit_ms_mean", t_ms.Mean());
      g.Set("spec_ms_mean", s_ms.Mean());
      g.Set("trinit_objects_mean", t_obj.Mean());
      g.Set("spec_objects_mean", s_obj.Mean());
      g.Set("spec_over_trinit_time", ratio);
      PrintRow({StrFormat("%zu", key), StrFormat("%llu",
                    static_cast<unsigned long long>(t_ms.count)),
                StrFormat("%.3f", t_ms.Mean()), StrFormat("%.3f", s_ms.Mean()),
                StrFormat("%.0f", t_obj.Mean()),
                StrFormat("%.0f", s_obj.Mean()), StrFormat("%.2f", ratio)},
               widths);
    }

    if (BatchModeRequested()) {
      // Whole-workload batched sweep (Spec-QP): the same warm engine runs
      // the workload once sequentially and once through the batch
      // executor, so
      // the per-k `batch` object tracks the steady-state amortisation of
      // shared scans and duplicate collapsing across the workload.
      WallTimer seq_timer;
      std::vector<Engine::QueryResult> sequential_results;
      sequential_results.reserve(workload.size());
      for (const Query& query : workload) {
        sequential_results.push_back(
            RunQuery(engine, query, k, Strategy::kSpecQp));
      }
      const double sequential_ms = seq_timer.ElapsedMillis();
      WallTimer batch_timer;
      BatchStats batch_stats;
      const auto batch_results =
          RunBatch(engine, workload, k, Strategy::kSpecQp, &batch_stats);
      const double batched_ms = batch_timer.ElapsedMillis();
      // Bit-equality per query (bindings AND scores), not just counts —
      // this is the determinism contract the artifact certifies.
      bool answers_match = true;
      for (size_t q = 0; answers_match && q < workload.size(); ++q) {
        const auto& seq_rows = sequential_results[q].rows;
        const auto& batch_rows = batch_results[q].rows;
        answers_match = seq_rows.size() == batch_rows.size();
        for (size_t r = 0; answers_match && r < seq_rows.size(); ++r) {
          answers_match = seq_rows[r].bindings == batch_rows[r].bindings &&
                          seq_rows[r].score == batch_rows[r].score;
        }
      }
      Json& batch_json = k_json.Set("batch", BatchStatsToJson(batch_stats));
      batch_json.Set("sequential_ms", sequential_ms);
      batch_json.Set("batched_ms", batched_ms);
      batch_json.Set("answers_match", answers_match);
      std::printf(
          "batch sweep (Spec-QP): %zu queries (%zu distinct) in %.1f ms "
          "batched vs %.1f ms sequential, %llu shared-scan hits, answers "
          "%s\n",
          batch_stats.batch_size, batch_stats.distinct_queries, batched_ms,
          sequential_ms,
          static_cast<unsigned long long>(batch_stats.shared_scan_hits),
          answers_match ? "match" : "MISMATCH");
    }
  }
  out.Set("cache", CacheStatsToJson(engine.postings()));
  std::printf(
      "\nShape check (paper Figs 6-9): S <= T on runtime and memory in "
      "every group; the gap is largest at k=10 / few-patterns-relaxed and "
      "shrinks as k or #relaxed grows; with all patterns relaxed S ~= T "
      "plus planning overhead.\n");
}

void PrintTitle(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void PrintSubtitle(const std::string& subtitle) {
  std::printf("\n--- %s ---\n", subtitle.c_str());
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    line += StrFormat("%-*s", width, cells[i].c_str());
  }
  std::printf("%s\n", line.c_str());
}

void PrintRule(const std::vector<int>& widths) {
  int total = 0;
  for (int w : widths) total += w;
  std::printf("%s\n", std::string(static_cast<size_t>(total), '-').c_str());
}

std::string WithPaper(double measured, const char* paper_value) {
  return StrFormat("%s (paper %s)", DoubleToString(measured, 2).c_str(),
                   paper_value);
}

}  // namespace specqp::bench
