#include "bench_common.h"

#include <memory>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace specqp::bench {

namespace {

XkgBundle* BuildXkg() {
  WallTimer timer;
  auto* bundle = new XkgBundle;
  XkgConfig config;  // defaults: 40k entities, 24 domains, 18 types/domain
  bundle->data = GenerateXkg(config);

  XkgWorkloadConfig workload;
  workload.seed = 71;
  workload.queries_per_size = 22;  // 66 ~ the paper's 65
  workload.min_relaxations = 10;
  bundle->workload = MakeXkgWorkload(bundle->data, workload);
  std::fprintf(stderr, "[bench] XKG ready: %zu triples, %zu queries (%.1fs)\n",
               bundle->data.store.size(), bundle->workload.size(),
               timer.ElapsedSeconds());
  return bundle;
}

TwitterBundle* BuildTwitter() {
  WallTimer timer;
  auto* bundle = new TwitterBundle;
  TwitterConfig config;  // defaults: 120k tweets, 50 topics
  bundle->data = GenerateTwitter(config);

  TwitterWorkloadConfig workload;
  workload.seed = 73;
  workload.queries_per_size = 25;  // 50 queries as in the paper
  workload.min_relaxations = 5;
  bundle->workload = MakeTwitterWorkload(bundle->data, workload);
  std::fprintf(stderr,
               "[bench] Twitter ready: %zu triples, %zu queries (%.1fs)\n",
               bundle->data.store.size(), bundle->workload.size(),
               timer.ElapsedSeconds());
  return bundle;
}

}  // namespace

const XkgBundle& GetXkg() {
  static const XkgBundle* bundle = BuildXkg();
  return *bundle;
}

const TwitterBundle& GetTwitter() {
  static const TwitterBundle* bundle = BuildTwitter();
  return *bundle;
}

std::vector<QueryEvaluation> EvaluateWorkloadQuality(
    Engine& engine, const ExhaustiveEvaluator& oracle,
    const std::vector<Query>& workload) {
  std::vector<QueryEvaluation> evaluations;
  evaluations.reserve(workload.size());
  for (const Query& query : workload) {
    QueryEvaluation eval;
    eval.query = &query;
    eval.truth = oracle.Evaluate(query);
    for (size_t k : kTopKs) {
      eval.by_k[k] = EvaluateQualityWithTruth(engine, eval.truth, query, k);
    }
    evaluations.push_back(std::move(eval));
  }
  return evaluations;
}

std::vector<EfficiencyRecord> MeasureWorkloadEfficiency(
    Engine& engine, const std::vector<Query>& workload, size_t k) {
  std::vector<EfficiencyRecord> records;
  records.reserve(workload.size());
  for (const Query& query : workload) {
    EfficiencyRecord record;
    record.num_patterns = query.num_patterns();
    record.metrics = MeasureEfficiency(engine, query, k);
    record.patterns_relaxed = record.metrics.patterns_relaxed;
    records.push_back(record);
  }
  return records;
}

void RunEfficiencyFigure(const std::string& title, Engine& engine,
                         const std::vector<Query>& workload,
                         GroupBy group_by) {
  PrintTitle(title);
  for (size_t k : kTopKs) {
    const std::vector<EfficiencyRecord> records =
        MeasureWorkloadEfficiency(engine, workload, k);

    // Collect the group keys present.
    std::map<size_t, std::vector<const EfficiencyRecord*>> groups;
    for (const EfficiencyRecord& r : records) {
      const size_t key = group_by == GroupBy::kNumPatterns
                             ? r.num_patterns
                             : r.patterns_relaxed;
      groups[key].push_back(&r);
    }

    PrintSubtitle(StrFormat("k=%zu", k));
    const std::vector<int> widths = {10, 8, 14, 14, 16, 16, 10};
    PrintRow({group_by == GroupBy::kNumPatterns ? "#TP" : "#relaxed",
              "queries", "T runtime ms", "S runtime ms", "T mem objects",
              "S mem objects", "S/T time"},
             widths);
    PrintRule(widths);
    for (const auto& [key, group] : groups) {
      Aggregate t_ms;
      Aggregate s_ms;
      Aggregate t_obj;
      Aggregate s_obj;
      for (const EfficiencyRecord* r : group) {
        t_ms.Add(r->metrics.trinit_ms);
        s_ms.Add(r->metrics.spec_ms);
        t_obj.Add(static_cast<double>(r->metrics.trinit_objects));
        s_obj.Add(static_cast<double>(r->metrics.spec_objects));
      }
      const double ratio =
          t_ms.Mean() > 0.0 ? s_ms.Mean() / t_ms.Mean() : 0.0;
      PrintRow({StrFormat("%zu", key), StrFormat("%llu",
                    static_cast<unsigned long long>(t_ms.count)),
                StrFormat("%.3f", t_ms.Mean()), StrFormat("%.3f", s_ms.Mean()),
                StrFormat("%.0f", t_obj.Mean()),
                StrFormat("%.0f", s_obj.Mean()), StrFormat("%.2f", ratio)},
               widths);
    }
  }
  std::printf(
      "\nShape check (paper Figs 6-9): S <= T on runtime and memory in "
      "every group; the gap is largest at k=10 / few-patterns-relaxed and "
      "shrinks as k or #relaxed grows; with all patterns relaxed S ~= T "
      "plus planning overhead.\n");
}

void PrintTitle(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void PrintSubtitle(const std::string& subtitle) {
  std::printf("\n--- %s ---\n", subtitle.c_str());
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    line += StrFormat("%-*s", width, cells[i].c_str());
  }
  std::printf("%s\n", line.c_str());
}

void PrintRule(const std::vector<int>& widths) {
  int total = 0;
  for (int w : widths) total += w;
  std::printf("%s\n", std::string(static_cast<size_t>(total), '-').c_str());
}

std::string WithPaper(double measured, const char* paper_value) {
  return StrFormat("%s (paper %s)", DoubleToString(measured, 2).c_str(),
                   paper_value);
}

}  // namespace specqp::bench
