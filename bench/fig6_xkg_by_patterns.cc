// Reproduces Figure 6: runtimes and memory (answer objects) of TriniT (T)
// vs Spec-QP (S) over the XKG workload, grouped by the number of triple
// patterns in the query (2, 3, 4), for k in {10, 15, 20}.
//
// Paper shape: S beats T by the widest margin at k=10; the gap narrows for
// larger k (more relaxations become necessary) and for 4-pattern queries.

#include "bench_common.h"

namespace specqp::bench {
namespace {

void Run(Json& out) {
  const XkgBundle& xkg = GetXkg();
  out.Set("dataset", "xkg");
  out.Set("num_triples", xkg.data.store.size());
  out.Set("num_queries", xkg.workload.size());
  Engine engine(&xkg.data.store, &xkg.data.rules, MakeEngineOptions());
  RunEfficiencyFigure(
      "Figure 6: XKG runtimes & memory, T vs S, by #triple patterns",
      engine, xkg.workload, GroupBy::kNumPatterns, out);
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "fig6_xkg_by_patterns",
                                  &specqp::bench::Run);
}
