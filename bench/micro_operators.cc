// Operator microbenchmarks (google-benchmark): throughput of the building
// blocks behind the tables/figures — pattern scans, incremental merges,
// rank joins, histogram convolution + refit, and PLANGEN latency.

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "rdf/posting_list.h"
#include "rdf/triple_store.h"
#include "relax/relaxation_index.h"
#include "stats/convolution.h"
#include "stats/grid_pdf.h"
#include "topk/incremental_merge.h"
#include "topk/pattern_scan.h"
#include "topk/rank_join.h"
#include "topk/top_k.h"
#include "util/random.h"
#include "util/string_util.h"

namespace specqp {
namespace {

// Synthetic store: `num_objects` object constants under one predicate, each
// with ~num_triples/num_objects power-law-scored subjects.
struct MicroFixture {
  TripleStore store;
  RelaxationIndex rules;
  TermId predicate = kInvalidTermId;
  std::vector<TermId> objects;

  explicit MicroFixture(size_t num_subjects, size_t num_objects,
                        size_t triples_per_subject) {
    Rng rng(20240607);
    Dictionary& dict = store.dict();
    predicate = dict.Intern("p");
    for (size_t o = 0; o < num_objects; ++o) {
      objects.push_back(dict.Intern("obj" + std::to_string(o)));
    }
    for (size_t s = 0; s < num_subjects; ++s) {
      const TermId subject = dict.Intern("sub" + std::to_string(s));
      const double score =
          1e6 / static_cast<double>((s % 1000) + 1);  // power law
      for (size_t t = 0; t < triples_per_subject; ++t) {
        store.AddEncoded(subject, predicate,
                         objects[rng.NextBounded(objects.size())], score);
      }
    }
    store.Finalize();
    // Rules: each object relaxes to the next few, decaying weights.
    for (size_t o = 0; o < num_objects; ++o) {
      for (size_t j = 1; j <= 5 && o + j < num_objects; ++j) {
        RelaxationRule rule;
        rule.from = PatternKey{kInvalidTermId, predicate, objects[o]};
        rule.to = PatternKey{kInvalidTermId, predicate, objects[o + j]};
        rule.weight = 0.9 / static_cast<double>(j);
        (void)rules.AddRule(rule);
      }
    }
  }

  TriplePattern Pattern(size_t object_index, VarId var) const {
    return TriplePattern(PatternTerm::Var(var), PatternTerm::Const(predicate),
                         PatternTerm::Const(objects[object_index]));
  }
};

MicroFixture& Fixture() {
  static auto* fx = new MicroFixture(20000, 16, 4);
  return *fx;
}

void BM_PostingListBuild(benchmark::State& state) {
  MicroFixture& fx = Fixture();
  const PatternKey key = fx.Pattern(0, 0).Key();
  for (auto _ : state) {
    PostingList list = BuildPostingList(fx.store, key);
    benchmark::DoNotOptimize(list.entries.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(fx.store.CountMatches(key)));
}
BENCHMARK(BM_PostingListBuild);

void BM_PatternScanDrain(benchmark::State& state) {
  MicroFixture& fx = Fixture();
  PostingListCache cache(&fx.store);
  const TriplePattern pattern = fx.Pattern(1, 0);
  auto list = cache.Get(pattern.Key());
  for (auto _ : state) {
    ExecStats stats;
    PatternScan scan(&fx.store, list, pattern, 1, 1.0, &stats);
    ScoredRow row;
    size_t n = 0;
    while (scan.Next(&row)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(list->size()));
}
BENCHMARK(BM_PatternScanDrain);

void BM_IncrementalMergeTopK(benchmark::State& state) {
  const size_t num_inputs = static_cast<size_t>(state.range(0));
  MicroFixture& fx = Fixture();
  PostingListCache cache(&fx.store);
  for (auto _ : state) {
    ExecStats stats;
    std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
    for (size_t i = 0; i < num_inputs; ++i) {
      const TriplePattern pattern = fx.Pattern(i % fx.objects.size(), 0);
      inputs.push_back(std::make_unique<PatternScan>(
          &fx.store, cache.Get(pattern.Key()), pattern, 1,
          1.0 / static_cast<double>(i + 1), &stats));
    }
    IncrementalMerge merge(std::move(inputs), &stats);
    const auto rows = PullTopK(&merge, 20, &stats);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_IncrementalMergeTopK)->Arg(2)->Arg(5)->Arg(10);

void BM_RankJoinTopK(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  MicroFixture& fx = Fixture();
  PostingListCache cache(&fx.store);
  const TriplePattern left = fx.Pattern(0, 0);
  const TriplePattern right = fx.Pattern(1, 0);
  for (auto _ : state) {
    ExecStats stats;
    auto l = std::make_unique<PatternScan>(&fx.store, cache.Get(left.Key()),
                                           left, 1, 1.0, &stats);
    auto r = std::make_unique<PatternScan>(&fx.store, cache.Get(right.Key()),
                                           right, 1, 1.0, &stats);
    RankJoin join(std::move(l), std::move(r), {0}, &stats);
    const auto rows = PullTopK(&join, k, &stats);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_RankJoinTopK)->Arg(1)->Arg(10)->Arg(100);

void BM_ConvolveRefitChain(benchmark::State& state) {
  const int patterns = static_cast<int>(state.range(0));
  TwoBucketHistogram h(0.2, 0.8);
  for (auto _ : state) {
    TwoBucketHistogram acc = h;
    for (int i = 1; i < patterns; ++i) {
      acc = RefitTwoBucket(ConvolveTwoBucket(acc, h), 0.8);
    }
    benchmark::DoNotOptimize(acc.sigma_r());
  }
}
BENCHMARK(BM_ConvolveRefitChain)->Arg(2)->Arg(3)->Arg(4);

void BM_GridConvolveChain(benchmark::State& state) {
  const int patterns = static_cast<int>(state.range(0));
  TwoBucketHistogram h(0.2, 0.8);
  const double delta = 1.0 / 512.0;
  for (auto _ : state) {
    GridPdf acc = GridPdf::FromDistribution(h, delta);
    for (int i = 1; i < patterns; ++i) {
      acc = GridPdf::Convolve(acc, GridPdf::FromDistribution(h, delta));
    }
    benchmark::DoNotOptimize(acc.Mean());
  }
}
BENCHMARK(BM_GridConvolveChain)->Arg(2)->Arg(3)->Arg(4);

void BM_PlangenLatency(benchmark::State& state) {
  const size_t num_patterns = static_cast<size_t>(state.range(0));
  MicroFixture& fx = Fixture();
  Engine engine(&fx.store, &fx.rules);
  Query query;
  const VarId s = query.GetOrAddVariable("s");
  for (size_t i = 0; i < num_patterns; ++i) {
    query.AddPattern(fx.Pattern(i, s));
  }
  query.AddProjection(s);
  engine.Warm(query);
  (void)engine.PlanOnly(query, 10);  // warm the stats/selectivity memos
  for (auto _ : state) {
    QueryPlan plan = engine.PlanOnly(query, 10);
    benchmark::DoNotOptimize(plan.singletons.data());
  }
}
BENCHMARK(BM_PlangenLatency)->Arg(2)->Arg(3)->Arg(4);

void BM_EndToEndQuery(benchmark::State& state) {
  const bool speculative = state.range(0) != 0;
  MicroFixture& fx = Fixture();
  Engine engine(&fx.store, &fx.rules);
  Query query;
  const VarId s = query.GetOrAddVariable("s");
  query.AddPattern(fx.Pattern(0, s));
  query.AddPattern(fx.Pattern(1, s));
  query.AddPattern(fx.Pattern(2, s));
  query.AddProjection(s);
  engine.Warm(query);
  for (auto _ : state) {
    const auto result = engine.Execute(
        query, 10, speculative ? Strategy::kSpecQp : Strategy::kTrinit);
    benchmark::DoNotOptimize(result.rows.data());
  }
  state.SetLabel(speculative ? "Spec-QP" : "TriniT");
}
BENCHMARK(BM_EndToEndQuery)->Arg(0)->Arg(1);

}  // namespace
}  // namespace specqp

BENCHMARK_MAIN();
