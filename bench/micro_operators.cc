// Operator microbenchmarks: throughput of the building blocks behind the
// tables/figures — pattern scans, incremental merges, rank joins,
// histogram convolution + refit, and PLANGEN latency. Runs on the shared
// BenchMain driver so the timings land in the same JSON artifact format as
// the figure/table benches.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "rdf/posting_list.h"
#include "rdf/posting_partition.h"
#include "rdf/triple_store.h"
#include "relax/relaxation_index.h"
#include "stats/convolution.h"
#include "stats/grid_pdf.h"
#include "topk/exec_context.h"
#include "topk/incremental_merge.h"
#include "topk/parallel_rank_join.h"
#include "topk/pattern_scan.h"
#include "topk/rank_join.h"
#include "topk/top_k.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace specqp::bench {
namespace {

// Synthetic store: `num_objects` object constants under one predicate, each
// with ~num_triples/num_objects power-law-scored subjects.
struct MicroFixture {
  TripleStore store;
  RelaxationIndex rules;
  TermId predicate = kInvalidTermId;
  std::vector<TermId> objects;

  explicit MicroFixture(size_t num_subjects, size_t num_objects,
                        size_t triples_per_subject) {
    Rng rng(20240607);
    Dictionary& dict = store.dict();
    predicate = dict.Intern("p");
    for (size_t o = 0; o < num_objects; ++o) {
      objects.push_back(dict.Intern("obj" + std::to_string(o)));
    }
    for (size_t s = 0; s < num_subjects; ++s) {
      const TermId subject = dict.Intern("sub" + std::to_string(s));
      const double score =
          1e6 / static_cast<double>((s % 1000) + 1);  // power law
      for (size_t t = 0; t < triples_per_subject; ++t) {
        store.AddEncoded(subject, predicate,
                         objects[rng.NextBounded(objects.size())], score);
      }
    }
    store.Finalize();
    // Rules: each object relaxes to the next few, decaying weights.
    for (size_t o = 0; o < num_objects; ++o) {
      for (size_t j = 1; j <= 5 && o + j < num_objects; ++j) {
        RelaxationRule rule;
        rule.from = PatternKey{kInvalidTermId, predicate, objects[o]};
        rule.to = PatternKey{kInvalidTermId, predicate, objects[o + j]};
        rule.weight = 0.9 / static_cast<double>(j);
        (void)rules.AddRule(rule);
      }
    }
  }

  TriplePattern Pattern(size_t object_index, VarId var) const {
    return TriplePattern(PatternTerm::Var(var), PatternTerm::Const(predicate),
                         PatternTerm::Const(objects[object_index]));
  }
};

MicroFixture& Fixture() {
  static auto* fx = new MicroFixture(20000, 16, 4);
  return *fx;
}

// The LARGEST micro input (240k triples): one predicate, 8 objects,
// ~30k-entry posting lists per side. Shared by the parallel rank join and
// the block-skipping comparison.
MicroFixture& BigFixture() {
  static auto* fx = new MicroFixture(240000, 8, 1);
  return *fx;
}

// Re-encodes a flat posting list into the block-compressed backend, as a
// v3-backed store would serve it.
std::shared_ptr<const PostingList> BlockedCopy(const TripleStore& store,
                                               const PostingList& flat) {
  std::span<const PostingEntry> entries = flat.entries;
  EncodedPostingBlocks encoded =
      EncodePostingBlocks(entries.data(), entries.size());
  return std::make_shared<const PostingList>(PostingList::FromBlocks(
      std::move(encoded.headers), std::move(encoded.payload), entries.size(),
      flat.max_raw_score, static_cast<uint32_t>(store.size())));
}

// Keeps the result of `expr` alive so the compiler cannot elide the work.
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

// One microbenchmark: `body` is a single iteration; `items_per_iter` (when
// non-zero) scales the reported throughput.
struct MicroResult {
  std::string name;
  uint64_t iterations = 0;
  double total_ms = 0.0;
  double ns_per_iter = 0.0;
  uint64_t items_per_iter = 0;
  double items_per_second = 0.0;
  double speedup_vs_serial = 0.0;  // parallel variants only (0 = n/a)
};

MicroResult RunMicro(const std::string& name,
                     const std::function<void()>& body,
                     uint64_t items_per_iter = 0) {
  body();  // warm-up (first-touch allocation, cache fills)

  constexpr double kMinSeconds = 0.1;
  constexpr uint64_t kMaxIters = 1u << 22;
  uint64_t iterations = 0;
  WallTimer timer;
  // Run in growing batches so the clock is read rarely relative to work.
  for (uint64_t batch = 1; timer.ElapsedSeconds() < kMinSeconds &&
                           iterations < kMaxIters;
       batch *= 2) {
    for (uint64_t i = 0; i < batch; ++i) body();
    iterations += batch;
  }

  MicroResult result;
  result.name = name;
  result.iterations = iterations;
  result.total_ms = timer.ElapsedMillis();
  result.ns_per_iter =
      result.total_ms * 1e6 / static_cast<double>(iterations);
  result.items_per_iter = items_per_iter;
  if (items_per_iter > 0) {
    result.items_per_second = static_cast<double>(items_per_iter) *
                              static_cast<double>(iterations) /
                              (result.total_ms / 1e3);
  }
  return result;
}

void Run(Json& out) {
  PrintTitle("Operator microbenchmarks");
  std::vector<MicroResult> results;

  MicroFixture& fx = Fixture();

  {
    const PatternKey key = fx.Pattern(0, 0).Key();
    results.push_back(RunMicro(
        "posting_list_build",
        [&] {
          PostingList list = BuildPostingList(fx.store, key);
          DoNotOptimize(list.entries.data());
        },
        fx.store.CountMatches(key)));
  }

  {
    PostingListCache cache(&fx.store);
    const TriplePattern pattern = fx.Pattern(1, 0);
    auto list = cache.Get(pattern.Key());
    results.push_back(RunMicro(
        "pattern_scan_drain",
        [&] {
          ExecStats stats;
          ExecContext ctx(&stats);
          PatternScan scan(&fx.store, list, pattern, 1, 1.0, &ctx);
          ScoredRow row;
          size_t n = 0;
          while (scan.Next(&row)) ++n;
          DoNotOptimize(n);
        },
        list->size()));
  }

  for (size_t num_inputs : {2u, 5u, 10u}) {
    PostingListCache cache(&fx.store);
    results.push_back(RunMicro(
        StrFormat("incremental_merge_topk/inputs:%zu", num_inputs), [&] {
          ExecStats stats;
          ExecContext ctx(&stats);
          std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
          for (size_t i = 0; i < num_inputs; ++i) {
            const TriplePattern pattern =
                fx.Pattern(i % fx.objects.size(), 0);
            inputs.push_back(std::make_unique<PatternScan>(
                &fx.store, cache.Get(pattern.Key()), pattern, 1,
                1.0 / static_cast<double>(i + 1), &ctx));
          }
          IncrementalMerge merge(std::move(inputs), &ctx);
          const auto rows = PullTopK(&merge, 20, &stats);
          DoNotOptimize(rows.data());
        }));
  }

  for (size_t k : {1u, 10u, 100u}) {
    PostingListCache cache(&fx.store);
    const TriplePattern left = fx.Pattern(0, 0);
    const TriplePattern right = fx.Pattern(1, 0);
    results.push_back(
        RunMicro(StrFormat("rank_join_topk/k:%zu", k), [&] {
          ExecStats stats;
          ExecContext ctx(&stats);
          auto l = std::make_unique<PatternScan>(
              &fx.store, cache.Get(left.Key()), left, 1, 1.0, &ctx);
          auto r = std::make_unique<PatternScan>(
              &fx.store, cache.Get(right.Key()), right, 1, 1.0, &ctx);
          RankJoin join(std::move(l), std::move(r), {0}, &ctx);
          const auto rows = PullTopK(&join, k, &stats);
          DoNotOptimize(rows.data());
        }));
  }

  {
    // Partitioned parallel rank join over the LARGEST micro input: one
    // predicate, 8 objects, ~30k-entry posting lists per side. The
    // partition pieces are built outside the timed body (a build-time cost
    // amortised across executions, like posting-list construction itself);
    // the timed body builds the per-partition HRJN trees, runs them on the
    // pool, and merges the top-k. threads:1 is the serial RankJoin
    // baseline the speedups are measured against.
    MicroFixture& big = BigFixture();
    PostingListCache cache(&big.store);
    const TriplePattern left = big.Pattern(0, 0);
    const TriplePattern right = big.Pattern(1, 0);
    auto left_list = cache.Get(left.Key());
    auto right_list = cache.Get(right.Key());
    const size_t k = 500;
    double serial_ns = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      const uint32_t parts = static_cast<uint32_t>(threads);
      std::unique_ptr<ThreadPool> pool;
      std::vector<std::shared_ptr<const PostingList>> left_parts;
      std::vector<std::shared_ptr<const PostingList>> right_parts;
      if (threads > 1) {
        pool = std::make_unique<ThreadPool>(static_cast<size_t>(threads) - 1);
        left_parts = PartitionPostingList(big.store, *left_list, 0, parts);
        right_parts = PartitionPostingList(big.store, *right_list, 0, parts);
      }
      MicroResult r = RunMicro(
          StrFormat("parallel_rank_join_topk/threads:%d", threads), [&] {
            ExecStats stats;
            ExecContext ctx(&stats, pool.get());
            std::vector<ScoredRow> rows;
            if (threads == 1) {
              auto l = std::make_unique<PatternScan>(&big.store, left_list,
                                                     left, 1, 1.0, &ctx);
              auto r2 = std::make_unique<PatternScan>(&big.store, right_list,
                                                      right, 1, 1.0, &ctx);
              RankJoin join(std::move(l), std::move(r2), {0}, &ctx);
              rows = PullTopK(&join, k, &stats);
            } else {
              std::vector<std::unique_ptr<ScoredRowIterator>> roots;
              for (uint32_t p = 0; p < parts; ++p) {
                ExecContext* part_ctx = ctx.ForPartition();
                auto l = std::make_unique<PatternScan>(
                    &big.store, left_parts[p], left, 1, 1.0, part_ctx);
                auto r2 = std::make_unique<PatternScan>(
                    &big.store, right_parts[p], right, 1, 1.0, part_ctx);
                roots.push_back(std::make_unique<RankJoin>(
                    std::move(l), std::move(r2), std::vector<VarId>{0},
                    part_ctx));
              }
              ParallelRankJoin join(std::move(roots), &ctx);
              rows = PullTopK(&join, k, &stats);
              ctx.MergePartitionStats();
            }
            DoNotOptimize(rows.data());
          });
      if (threads == 1) {
        serial_ns = r.ns_per_iter;
      } else if (serial_ns > 0.0 && r.ns_per_iter > 0.0) {
        r.speedup_vs_serial = serial_ns / r.ns_per_iter;
      }
      results.push_back(std::move(r));
    }
  }

  {
    // Block skipping on the same 240k-triple input: a self-join over the
    // ~30k-entry obj0 list at k=10. The list's score curve has ~30 tied
    // top-score entries per side, so the HRJN corner bound is beaten after
    // a few dozen pulls and the join never looks at the tail. A flat list
    // pays for all ~30k entries up front regardless; the block-compressed
    // backend decodes only the leading block per scan and the remaining
    // ~470 blocks are charged as provably-dead skips at teardown. Both
    // backends return identical rows (the store-format probe asserts this
    // bit-exactly); `block_skipping` in the artifact records the counters
    // from one instrumented run so compare_bench_json.py can fail a change
    // that silently regresses skipping to zero.
    MicroFixture& big = BigFixture();
    PostingListCache cache(&big.store);
    const TriplePattern pattern = big.Pattern(0, 0);
    auto flat_list = cache.Get(pattern.Key());
    auto blocked_list = BlockedCopy(big.store, *flat_list);
    const size_t k = 10;
    for (const bool use_blocked : {false, true}) {
      const auto& list = use_blocked ? blocked_list : flat_list;
      results.push_back(RunMicro(
          StrFormat("rank_join_topk_240k/backend:%s",
                    use_blocked ? "blocked" : "flat"),
          [&] {
            ExecStats stats;
            ExecContext ctx(&stats);
            auto l = std::make_unique<PatternScan>(&big.store, list, pattern,
                                                   1, 1.0, &ctx);
            auto r = std::make_unique<PatternScan>(&big.store, list, pattern,
                                                   1, 1.0, &ctx);
            RankJoin join(std::move(l), std::move(r), {0}, &ctx);
            const auto rows = PullTopK(&join, k, &stats);
            DoNotOptimize(rows.data());
          }));
    }
    ExecStats stats;
    {
      ExecContext ctx(&stats);
      auto l = std::make_unique<PatternScan>(&big.store, blocked_list,
                                             pattern, 1, 1.0, &ctx);
      auto r = std::make_unique<PatternScan>(&big.store, blocked_list,
                                             pattern, 1, 1.0, &ctx);
      RankJoin join(std::move(l), std::move(r), {0}, &ctx);
      const auto rows = PullTopK(&join, k, &stats);
      DoNotOptimize(rows.data());
    }  // tree teardown charges the untouched tail blocks as skipped
    const size_t blocks_per_list =
        (blocked_list->size() + kPostingBlockEntries - 1) /
        kPostingBlockEntries;
    std::printf(
        "block skipping (240k self-join, k=%zu): decoded %llu of %zu "
        "blocks across both scans, skipped %llu\n",
        k, static_cast<unsigned long long>(stats.blocks_decoded),
        2 * blocks_per_list,
        static_cast<unsigned long long>(stats.blocks_skipped));
    Json& skip = out.Set("block_skipping", Json::Object());
    skip.Set("list_entries", blocked_list->size());
    skip.Set("blocks_per_list", blocks_per_list);
    skip.Set("k", k);
    skip.Set("blocks_decoded", stats.blocks_decoded);
    skip.Set("blocks_skipped", stats.blocks_skipped);
  }

  for (int patterns : {2, 3, 4}) {
    TwoBucketHistogram h(0.2, 0.8);
    results.push_back(RunMicro(
        StrFormat("convolve_refit_chain/patterns:%d", patterns), [&] {
          TwoBucketHistogram acc = h;
          for (int i = 1; i < patterns; ++i) {
            acc = RefitTwoBucket(ConvolveTwoBucket(acc, h), 0.8);
          }
          DoNotOptimize(acc.sigma_r());
        }));
  }

  for (int patterns : {2, 3, 4}) {
    TwoBucketHistogram h(0.2, 0.8);
    const double delta = 1.0 / 512.0;
    results.push_back(RunMicro(
        StrFormat("grid_convolve_chain/patterns:%d", patterns), [&] {
          GridPdf acc = GridPdf::FromDistribution(h, delta);
          for (int i = 1; i < patterns; ++i) {
            acc = GridPdf::Convolve(acc, GridPdf::FromDistribution(h, delta));
          }
          DoNotOptimize(acc.Mean());
        }));
  }

  for (size_t num_patterns : {2u, 3u, 4u}) {
    Engine engine(&fx.store, &fx.rules, MakeEngineOptions());
    Query query;
    const VarId s = query.GetOrAddVariable("s");
    for (size_t i = 0; i < num_patterns; ++i) {
      query.AddPattern(fx.Pattern(i, s));
    }
    query.AddProjection(s);
    engine.Warm(query);
    (void)engine.PlanOnly(query, 10);  // warm the stats/selectivity memos
    results.push_back(RunMicro(
        StrFormat("plangen_latency/patterns:%zu", num_patterns), [&] {
          QueryPlan plan = engine.PlanOnly(query, 10);
          DoNotOptimize(plan.singletons.data());
        }));
  }

  for (const bool speculative : {false, true}) {
    Engine engine(&fx.store, &fx.rules, MakeEngineOptions());
    Query query;
    const VarId s = query.GetOrAddVariable("s");
    query.AddPattern(fx.Pattern(0, s));
    query.AddPattern(fx.Pattern(1, s));
    query.AddPattern(fx.Pattern(2, s));
    query.AddProjection(s);
    engine.Warm(query);
    results.push_back(RunMicro(
        StrFormat("end_to_end_query/%s",
                  speculative ? "spec_qp" : "trinit"),
        [&] {
          const auto result = RunQuery(
              engine, query, 10,
              speculative ? Strategy::kSpecQp : Strategy::kTrinit);
          DoNotOptimize(result.rows.data());
        }));
    if (speculative) out.Set("cache", CacheStatsToJson(engine.postings()));
  }

  const std::vector<int> widths = {38, 12, 14, 16};
  PrintRow({"benchmark", "iters", "ns/iter", "items/s"}, widths);
  PrintRule(widths);
  Json& benchmarks = out.Set("benchmarks", Json::Array());
  for (const MicroResult& r : results) {
    PrintRow({r.name,
              StrFormat("%llu", static_cast<unsigned long long>(r.iterations)),
              StrFormat("%.1f", r.ns_per_iter),
              r.items_per_iter == 0 ? std::string("-")
                                    : StrFormat("%.3g", r.items_per_second)},
             widths);
    Json& j = benchmarks.Push(Json::Object());
    j.Set("name", r.name);
    j.Set("iterations", r.iterations);
    j.Set("total_ms", r.total_ms);
    j.Set("ns_per_iter", r.ns_per_iter);
    if (r.items_per_iter > 0) {
      j.Set("items_per_iter", r.items_per_iter);
      j.Set("items_per_second", r.items_per_second);
    }
    if (r.speedup_vs_serial > 0.0) {
      j.Set("speedup_vs_serial", r.speedup_vs_serial);
    }
  }
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "micro_operators",
                                  &specqp::bench::Run);
}
