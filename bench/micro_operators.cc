// Operator microbenchmarks: throughput of the building blocks behind the
// tables/figures — pattern scans, incremental merges, rank joins,
// histogram convolution + refit, and PLANGEN latency. Runs on the shared
// BenchMain driver so the timings land in the same JSON artifact format as
// the figure/table benches.

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "rdf/posting_list.h"
#include "rdf/posting_partition.h"
#include "rdf/store_format.h"
#include "rdf/triple_store.h"
#include "relax/relaxation_index.h"
#include "stats/convolution.h"
#include "stats/grid_pdf.h"
#include "topk/exec_context.h"
#include "topk/incremental_merge.h"
#include "topk/parallel_rank_join.h"
#include "topk/pattern_scan.h"
#include "topk/rank_join.h"
#include "topk/top_k.h"
#include "util/fault_injector.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace specqp::bench {
namespace {

// Synthetic store: `num_objects` object constants under one predicate, each
// with ~num_triples/num_objects power-law-scored subjects.
struct MicroFixture {
  TripleStore store;
  RelaxationIndex rules;
  TermId predicate = kInvalidTermId;
  std::vector<TermId> objects;

  explicit MicroFixture(size_t num_subjects, size_t num_objects,
                        size_t triples_per_subject) {
    Rng rng(20240607);
    Dictionary& dict = store.dict();
    predicate = dict.Intern("p");
    for (size_t o = 0; o < num_objects; ++o) {
      objects.push_back(dict.Intern("obj" + std::to_string(o)));
    }
    for (size_t s = 0; s < num_subjects; ++s) {
      const TermId subject = dict.Intern("sub" + std::to_string(s));
      const double score =
          1e6 / static_cast<double>((s % 1000) + 1);  // power law
      for (size_t t = 0; t < triples_per_subject; ++t) {
        store.AddEncoded(subject, predicate,
                         objects[rng.NextBounded(objects.size())], score);
      }
    }
    store.Finalize();
    // Rules: each object relaxes to the next few, decaying weights.
    for (size_t o = 0; o < num_objects; ++o) {
      for (size_t j = 1; j <= 5 && o + j < num_objects; ++j) {
        RelaxationRule rule;
        rule.from = PatternKey{kInvalidTermId, predicate, objects[o]};
        rule.to = PatternKey{kInvalidTermId, predicate, objects[o + j]};
        rule.weight = 0.9 / static_cast<double>(j);
        (void)rules.AddRule(rule);
      }
    }
  }

  TriplePattern Pattern(size_t object_index, VarId var) const {
    return TriplePattern(PatternTerm::Var(var), PatternTerm::Const(predicate),
                         PatternTerm::Const(objects[object_index]));
  }
};

MicroFixture& Fixture() {
  static auto* fx = new MicroFixture(20000, 16, 4);
  return *fx;
}

// The LARGEST micro input (240k triples): one predicate, 8 objects,
// ~30k-entry posting lists per side. Shared by the parallel rank join and
// the block-skipping comparison.
MicroFixture& BigFixture() {
  static auto* fx = new MicroFixture(240000, 8, 1);
  return *fx;
}

// Adversarial input for the plan_race scenario: kGroups independent
// 3-pattern star queries (?s p A . ?s p B . ?s p C) whose PLANGEN decision
// is steered by poisoned catalog statistics, so the planner picks the
// wrong plan for half of them.
//
// Per group, 40 "answer" subjects sit at the tied-top score of A, B, and C
// simultaneously (answers score exactly 3.0 normalised), A and B hold
// nothing else, and C carries a 30k-entry slowly-descending filler tail
// shared with nobody. The plan shapes then cost wildly differently:
//
//   {A,B,C}   (no relaxation)  folds A |><| B first: both sides exhaust
//             after 40 rows, C only needs ~40 pulls before the HRJN corner
//             bound releases the answers — microseconds.
//   {B,C|A*}  (A relaxed)      folds B |><| C first: after the 40 matches,
//             the outer join keeps pulling the inner join (its upper bound
//             1 + ub_C dominates the merge side's 1.0) until C's 30k tail
//             is fully drained — milliseconds.
//
// A relaxes to R (weight 0.8, non-empty, joins back to the 40 answers), so
// the runner-up's certificate bound is (3-1) + 0.8 = 2.8 < 3.0: a k-th
// answer at 3.0 certifies the runner-up bit-identical. Even groups poison
// A's stats low (the planner wrongly relaxes a perfect pattern -> slow
// primary, the runner-up must win the race); odd groups poison R's stats
// to claim it is empty (the planner correctly keeps {A,B,C} -> the
// runner-up's work is wasted). Speculation pays off on half the workload.
struct RaceFixture {
  static constexpr size_t kGroups = 8;
  static constexpr size_t kAnswers = 40;
  static constexpr size_t kFillers = 30000;
  static constexpr size_t kRelaxJunk = 12000;

  TripleStore store;
  RelaxationIndex rules;
  std::vector<Query> queries;           // queries[q] is group q's star
  std::vector<v2::StatsEntry> poison;   // Preload before any planning

  RaceFixture() {
    Dictionary& dict = store.dict();
    const TermId p = dict.Intern("rp");
    for (size_t q = 0; q < kGroups; ++q) {
      const std::string tag = std::to_string(q);
      const TermId obj_a = dict.Intern("raceA" + tag);
      const TermId obj_b = dict.Intern("raceB" + tag);
      const TermId obj_c = dict.Intern("raceC" + tag);
      const TermId obj_r = dict.Intern("raceR" + tag);
      for (size_t i = 0; i < kAnswers; ++i) {
        const TermId m = dict.Intern("m" + tag + "_" + std::to_string(i));
        store.AddEncoded(m, p, obj_a, 1000.0);
        store.AddEncoded(m, p, obj_b, 1000.0);
        store.AddEncoded(m, p, obj_c, 1000.0);
        store.AddEncoded(m, p, obj_r, 1000.0);
      }
      for (size_t j = 0; j < kFillers; ++j) {
        const TermId f = dict.Intern("cf" + tag + "_" + std::to_string(j));
        const double score =
            990.0 - 790.0 * static_cast<double>(j) /
                        static_cast<double>(kFillers - 1);
        store.AddEncoded(f, p, obj_c, score);
      }
      for (size_t j = 0; j < kRelaxJunk; ++j) {
        const TermId f = dict.Intern("rf" + tag + "_" + std::to_string(j));
        store.AddEncoded(f, p, obj_r, 1000.0);
      }

      RelaxationRule rule;
      rule.from = PatternKey{kInvalidTermId, p, obj_a};
      rule.to = PatternKey{kInvalidTermId, p, obj_r};
      rule.weight = 0.8;
      (void)rules.AddRule(rule);

      if (q % 2 == 0) {
        // Planner-wrong group: A's matches look like junk (mean score
        // ~0.1), so E_Q(k) collapses and relaxing A through the juicy R
        // wins the comparison — against a pattern that is actually perfect.
        poison.push_back(v2::StatsEntry{kInvalidTermId, p, obj_a, 0,
                                        kAnswers, 0.1, 3.2, 4.0});
      } else {
        // Planner-right group: a stale snapshot row claims R is empty, so
        // E_Q'(1) is 0 and the planner keeps the (genuinely best)
        // unrelaxed join. The two-bucket model cannot express "non-empty
        // but uniformly low-scored" — its head bucket always reaches the
        // normalised ceiling — so an empty-claiming row is the one stats
        // shape that deterministically suppresses the relaxation.
        poison.push_back(v2::StatsEntry{kInvalidTermId, p, obj_r, 0,
                                        0, 0.0, 0.0, 0.0});
      }

      Query query;
      const VarId s = query.GetOrAddVariable("s");
      query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                     PatternTerm::Const(p),
                                     PatternTerm::Const(obj_a)));
      query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                     PatternTerm::Const(p),
                                     PatternTerm::Const(obj_b)));
      query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                     PatternTerm::Const(p),
                                     PatternTerm::Const(obj_c)));
      query.AddProjection(s);
      queries.push_back(std::move(query));
    }
    store.Finalize();
  }
};

RaceFixture& RaceFix() {
  static auto* fx = new RaceFixture();
  return *fx;
}

// Re-encodes a flat posting list into the block-compressed backend, as a
// v3-backed store would serve it.
std::shared_ptr<const PostingList> BlockedCopy(const TripleStore& store,
                                               const PostingList& flat) {
  std::span<const PostingEntry> entries = flat.entries;
  EncodedPostingBlocks encoded =
      EncodePostingBlocks(entries.data(), entries.size());
  return std::make_shared<const PostingList>(PostingList::FromBlocks(
      std::move(encoded.headers), std::move(encoded.payload), entries.size(),
      flat.max_raw_score, static_cast<uint32_t>(store.size())));
}

// Keeps the result of `expr` alive so the compiler cannot elide the work.
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

// One microbenchmark: `body` is a single iteration; `items_per_iter` (when
// non-zero) scales the reported throughput.
struct MicroResult {
  std::string name;
  uint64_t iterations = 0;
  double total_ms = 0.0;
  double ns_per_iter = 0.0;
  uint64_t items_per_iter = 0;
  double items_per_second = 0.0;
  double speedup_vs_serial = 0.0;  // parallel variants only (0 = n/a)
};

MicroResult RunMicro(const std::string& name,
                     const std::function<void()>& body,
                     uint64_t items_per_iter = 0) {
  body();  // warm-up (first-touch allocation, cache fills)

  constexpr double kMinSeconds = 0.1;
  constexpr uint64_t kMaxIters = 1u << 22;
  uint64_t iterations = 0;
  WallTimer timer;
  // Run in growing batches so the clock is read rarely relative to work.
  for (uint64_t batch = 1; timer.ElapsedSeconds() < kMinSeconds &&
                           iterations < kMaxIters;
       batch *= 2) {
    for (uint64_t i = 0; i < batch; ++i) body();
    iterations += batch;
  }

  MicroResult result;
  result.name = name;
  result.iterations = iterations;
  result.total_ms = timer.ElapsedMillis();
  result.ns_per_iter =
      result.total_ms * 1e6 / static_cast<double>(iterations);
  result.items_per_iter = items_per_iter;
  if (items_per_iter > 0) {
    result.items_per_second = static_cast<double>(items_per_iter) *
                              static_cast<double>(iterations) /
                              (result.total_ms / 1e3);
  }
  return result;
}

void Run(Json& out) {
  PrintTitle("Operator microbenchmarks");
  std::vector<MicroResult> results;

  MicroFixture& fx = Fixture();

  {
    const PatternKey key = fx.Pattern(0, 0).Key();
    results.push_back(RunMicro(
        "posting_list_build",
        [&] {
          PostingList list = BuildPostingList(fx.store, key);
          DoNotOptimize(list.entries.data());
        },
        fx.store.CountMatches(key)));
  }

  {
    PostingListCache cache(&fx.store);
    const TriplePattern pattern = fx.Pattern(1, 0);
    auto list = cache.Get(pattern.Key());
    results.push_back(RunMicro(
        "pattern_scan_drain",
        [&] {
          ExecStats stats;
          ExecContext ctx(&stats);
          PatternScan scan(&fx.store, list, pattern, 1, 1.0, &ctx);
          ScoredRow row;
          size_t n = 0;
          while (scan.Next(&row)) ++n;
          DoNotOptimize(n);
        },
        list->size()));
  }

  {
    // The disarmed fault-injection probe: the hook every storage touch
    // pays in production (one relaxed atomic load). The artifact tracks
    // it so a change that puts real work on the disarmed path shows up
    // as a runtime regression here — and the hot-path benches above,
    // which all run with injection disabled, bound the end-to-end cost.
    SPECQP_CHECK(!FaultInjector::Global().armed());
    constexpr uint64_t kProbesPerIter = 1024;
    results.push_back(RunMicro(
        "fault_probe_disarmed",
        [&] {
          bool fired = false;
          for (uint64_t i = 0; i < kProbesPerIter; ++i) {
            fired |= FaultShouldFail("shard.read", i & 7);
          }
          DoNotOptimize(fired);
        },
        kProbesPerIter));
  }

  for (size_t num_inputs : {2u, 5u, 10u}) {
    PostingListCache cache(&fx.store);
    results.push_back(RunMicro(
        StrFormat("incremental_merge_topk/inputs:%zu", num_inputs), [&] {
          ExecStats stats;
          ExecContext ctx(&stats);
          std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
          for (size_t i = 0; i < num_inputs; ++i) {
            const TriplePattern pattern =
                fx.Pattern(i % fx.objects.size(), 0);
            inputs.push_back(std::make_unique<PatternScan>(
                &fx.store, cache.Get(pattern.Key()), pattern, 1,
                1.0 / static_cast<double>(i + 1), &ctx));
          }
          IncrementalMerge merge(std::move(inputs), &ctx);
          const auto rows = PullTopK(&merge, 20, &stats);
          DoNotOptimize(rows.data());
        }));
  }

  for (size_t k : {1u, 10u, 100u}) {
    PostingListCache cache(&fx.store);
    const TriplePattern left = fx.Pattern(0, 0);
    const TriplePattern right = fx.Pattern(1, 0);
    results.push_back(
        RunMicro(StrFormat("rank_join_topk/k:%zu", k), [&] {
          ExecStats stats;
          ExecContext ctx(&stats);
          auto l = std::make_unique<PatternScan>(
              &fx.store, cache.Get(left.Key()), left, 1, 1.0, &ctx);
          auto r = std::make_unique<PatternScan>(
              &fx.store, cache.Get(right.Key()), right, 1, 1.0, &ctx);
          RankJoin join(std::move(l), std::move(r), {0}, &ctx);
          const auto rows = PullTopK(&join, k, &stats);
          DoNotOptimize(rows.data());
        }));
  }

  {
    // Partitioned parallel rank join over the LARGEST micro input: one
    // predicate, 8 objects, ~30k-entry posting lists per side. The
    // partition pieces are built outside the timed body (a build-time cost
    // amortised across executions, like posting-list construction itself);
    // the timed body builds the per-partition HRJN trees, runs them on the
    // pool, and merges the top-k. threads:1 is the serial RankJoin
    // baseline the speedups are measured against.
    MicroFixture& big = BigFixture();
    PostingListCache cache(&big.store);
    const TriplePattern left = big.Pattern(0, 0);
    const TriplePattern right = big.Pattern(1, 0);
    auto left_list = cache.Get(left.Key());
    auto right_list = cache.Get(right.Key());
    const size_t k = 500;
    double serial_ns = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      const uint32_t parts = static_cast<uint32_t>(threads);
      std::unique_ptr<ThreadPool> pool;
      std::vector<std::shared_ptr<const PostingList>> left_parts;
      std::vector<std::shared_ptr<const PostingList>> right_parts;
      if (threads > 1) {
        pool = std::make_unique<ThreadPool>(static_cast<size_t>(threads) - 1);
        left_parts = PartitionPostingList(big.store, *left_list, 0, parts);
        right_parts = PartitionPostingList(big.store, *right_list, 0, parts);
      }
      MicroResult r = RunMicro(
          StrFormat("parallel_rank_join_topk/threads:%d", threads), [&] {
            ExecStats stats;
            ExecContext ctx(&stats, pool.get());
            std::vector<ScoredRow> rows;
            if (threads == 1) {
              auto l = std::make_unique<PatternScan>(&big.store, left_list,
                                                     left, 1, 1.0, &ctx);
              auto r2 = std::make_unique<PatternScan>(&big.store, right_list,
                                                      right, 1, 1.0, &ctx);
              RankJoin join(std::move(l), std::move(r2), {0}, &ctx);
              rows = PullTopK(&join, k, &stats);
            } else {
              std::vector<std::unique_ptr<ScoredRowIterator>> roots;
              for (uint32_t p = 0; p < parts; ++p) {
                ExecContext* part_ctx = ctx.ForPartition();
                auto l = std::make_unique<PatternScan>(
                    &big.store, left_parts[p], left, 1, 1.0, part_ctx);
                auto r2 = std::make_unique<PatternScan>(
                    &big.store, right_parts[p], right, 1, 1.0, part_ctx);
                roots.push_back(std::make_unique<RankJoin>(
                    std::move(l), std::move(r2), std::vector<VarId>{0},
                    part_ctx));
              }
              ParallelRankJoin join(std::move(roots), &ctx);
              rows = PullTopK(&join, k, &stats);
              ctx.MergePartitionStats();
            }
            DoNotOptimize(rows.data());
          });
      if (threads == 1) {
        serial_ns = r.ns_per_iter;
      } else if (serial_ns > 0.0 && r.ns_per_iter > 0.0) {
        r.speedup_vs_serial = serial_ns / r.ns_per_iter;
      }
      results.push_back(std::move(r));
    }
  }

  {
    // Block skipping on the same 240k-triple input: a self-join over the
    // ~30k-entry obj0 list at k=10. The list's score curve has ~30 tied
    // top-score entries per side, so the HRJN corner bound is beaten after
    // a few dozen pulls and the join never looks at the tail. A flat list
    // pays for all ~30k entries up front regardless; the block-compressed
    // backend decodes only the leading block per scan and the remaining
    // ~470 blocks are charged as provably-dead skips at teardown. Both
    // backends return identical rows (the store-format probe asserts this
    // bit-exactly); `block_skipping` in the artifact records the counters
    // from one instrumented run so compare_bench_json.py can fail a change
    // that silently regresses skipping to zero.
    MicroFixture& big = BigFixture();
    PostingListCache cache(&big.store);
    const TriplePattern pattern = big.Pattern(0, 0);
    auto flat_list = cache.Get(pattern.Key());
    auto blocked_list = BlockedCopy(big.store, *flat_list);
    const size_t k = 10;
    for (const bool use_blocked : {false, true}) {
      const auto& list = use_blocked ? blocked_list : flat_list;
      results.push_back(RunMicro(
          StrFormat("rank_join_topk_240k/backend:%s",
                    use_blocked ? "blocked" : "flat"),
          [&] {
            ExecStats stats;
            ExecContext ctx(&stats);
            auto l = std::make_unique<PatternScan>(&big.store, list, pattern,
                                                   1, 1.0, &ctx);
            auto r = std::make_unique<PatternScan>(&big.store, list, pattern,
                                                   1, 1.0, &ctx);
            RankJoin join(std::move(l), std::move(r), {0}, &ctx);
            const auto rows = PullTopK(&join, k, &stats);
            DoNotOptimize(rows.data());
          }));
    }
    ExecStats stats;
    {
      ExecContext ctx(&stats);
      auto l = std::make_unique<PatternScan>(&big.store, blocked_list,
                                             pattern, 1, 1.0, &ctx);
      auto r = std::make_unique<PatternScan>(&big.store, blocked_list,
                                             pattern, 1, 1.0, &ctx);
      RankJoin join(std::move(l), std::move(r), {0}, &ctx);
      const auto rows = PullTopK(&join, k, &stats);
      DoNotOptimize(rows.data());
    }  // tree teardown charges the untouched tail blocks as skipped
    const size_t blocks_per_list =
        (blocked_list->size() + kPostingBlockEntries - 1) /
        kPostingBlockEntries;
    std::printf(
        "block skipping (240k self-join, k=%zu): decoded %llu of %zu "
        "blocks across both scans, skipped %llu\n",
        k, static_cast<unsigned long long>(stats.blocks_decoded),
        2 * blocks_per_list,
        static_cast<unsigned long long>(stats.blocks_skipped));
    Json& skip = out.Set("block_skipping", Json::Object());
    skip.Set("list_entries", blocked_list->size());
    skip.Set("blocks_per_list", blocks_per_list);
    skip.Set("k", k);
    skip.Set("blocks_decoded", stats.blocks_decoded);
    skip.Set("blocks_skipped", stats.blocks_skipped);
  }

  for (int patterns : {2, 3, 4}) {
    TwoBucketHistogram h(0.2, 0.8);
    results.push_back(RunMicro(
        StrFormat("convolve_refit_chain/patterns:%d", patterns), [&] {
          TwoBucketHistogram acc = h;
          for (int i = 1; i < patterns; ++i) {
            acc = RefitTwoBucket(ConvolveTwoBucket(acc, h), 0.8);
          }
          DoNotOptimize(acc.sigma_r());
        }));
  }

  for (int patterns : {2, 3, 4}) {
    TwoBucketHistogram h(0.2, 0.8);
    const double delta = 1.0 / 512.0;
    results.push_back(RunMicro(
        StrFormat("grid_convolve_chain/patterns:%d", patterns), [&] {
          GridPdf acc = GridPdf::FromDistribution(h, delta);
          for (int i = 1; i < patterns; ++i) {
            acc = GridPdf::Convolve(acc, GridPdf::FromDistribution(h, delta));
          }
          DoNotOptimize(acc.Mean());
        }));
  }

  for (size_t num_patterns : {2u, 3u, 4u}) {
    Engine engine(&fx.store, &fx.rules, MakeEngineOptions());
    Query query;
    const VarId s = query.GetOrAddVariable("s");
    for (size_t i = 0; i < num_patterns; ++i) {
      query.AddPattern(fx.Pattern(i, s));
    }
    query.AddProjection(s);
    engine.Warm(query);
    (void)engine.PlanOnly(query, 10);  // warm the stats/selectivity memos
    results.push_back(RunMicro(
        StrFormat("plangen_latency/patterns:%zu", num_patterns), [&] {
          QueryPlan plan = engine.PlanOnly(query, 10);
          DoNotOptimize(plan.singletons.data());
        }));
  }

  for (const bool speculative : {false, true}) {
    Engine engine(&fx.store, &fx.rules, MakeEngineOptions());
    Query query;
    const VarId s = query.GetOrAddVariable("s");
    query.AddPattern(fx.Pattern(0, s));
    query.AddPattern(fx.Pattern(1, s));
    query.AddPattern(fx.Pattern(2, s));
    query.AddProjection(s);
    engine.Warm(query);
    results.push_back(RunMicro(
        StrFormat("end_to_end_query/%s",
                  speculative ? "spec_qp" : "trinit"),
        [&] {
          const auto result = RunQuery(
              engine, query, 10,
              speculative ? Strategy::kSpecQp : Strategy::kTrinit);
          DoNotOptimize(result.rows.data());
        }));
    if (speculative) out.Set("cache", CacheStatsToJson(engine.postings()));
  }

  {
    // plan_race: end-to-end latency with speculation off vs on over the
    // adversarial RaceFixture (planner wrong on half the groups; see the
    // fixture comment). Per-query latencies are collected individually —
    // RunMicro's mean would bury the point, which lives in the tail: the
    // planner-wrong groups are ~100x slower than the rest, so p99 tracks
    // them and racing the runner-up pulls p99 down to the fast plan plus
    // race overhead. Wasted work (the losers' discarded answer objects) is
    // the price, reported as a fraction of all speculative answer objects.
    RaceFixture& rf = RaceFix();
    const size_t k = 10;
    const int reps = 20;
    const int threads = 2;  // minimum for a race: the two plans time-share

    const auto make_engine = [&](double threshold) {
      EngineOptions opts = MakeEngineOptions();
      opts.num_threads = threads;
      opts.speculate_threshold = threshold;
      auto engine = std::make_unique<Engine>(&rf.store, &rf.rules, opts);
      // Poison before the first planner touch: Preload only inserts
      // entries the catalog has not computed yet.
      engine->catalog().Preload(rf.poison);
      for (const Query& query : rf.queries) engine->Warm(query);
      return engine;
    };
    const auto measure = [&](Engine& engine, ExecStats* total) {
      std::vector<double> ms;
      ms.reserve(static_cast<size_t>(reps) * rf.queries.size());
      for (int r = 0; r < reps; ++r) {
        for (const Query& query : rf.queries) {
          WallTimer timer;
          const auto result = RunQuery(engine, query, k, Strategy::kSpecQp);
          ms.push_back(timer.ElapsedMillis());
          *total += result.stats;
          DoNotOptimize(result.rows.data());
        }
      }
      std::sort(ms.begin(), ms.end());
      return ms;
    };
    const auto pct = [](const std::vector<double>& sorted, double p) {
      const size_t index = static_cast<size_t>(
          p * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[index];
    };

    auto off = make_engine(0.0);
    ExecStats off_total;
    const std::vector<double> off_ms = measure(*off, &off_total);
    auto on = make_engine(2.0);  // > 1: race whenever a runner-up exists
    ExecStats on_total;
    const std::vector<double> on_ms = measure(*on, &on_total);

    const double wasted = static_cast<double>(
        on_total.speculative_work_wasted_rows);
    const double useful = static_cast<double>(on_total.answer_objects);
    const double wasted_fraction =
        wasted > 0.0 ? wasted / (wasted + useful) : 0.0;
    const double p50_off = pct(off_ms, 0.50), p99_off = pct(off_ms, 0.99);
    const double p50_on = pct(on_ms, 0.50), p99_on = pct(on_ms, 0.99);

    std::printf(
        "plan race (%zu queries x %d reps, k=%zu, %d threads): p50 "
        "%.3f -> %.3f ms, p99 %.3f -> %.3f ms (%.2fx); %llu raced, "
        "%llu runner-up wins, wasted-work fraction %.2f\n",
        rf.queries.size(), reps, k, threads, p50_off, p50_on, p99_off,
        p99_on, p99_on > 0.0 ? p99_off / p99_on : 0.0,
        static_cast<unsigned long long>(on_total.plans_raced),
        static_cast<unsigned long long>(on_total.race_wins_by_runnerup),
        wasted_fraction);

    Json& race = out.Set("plan_race", Json::Object());
    race.Set("queries", rf.queries.size());
    race.Set("reps", reps);
    race.Set("k", k);
    race.Set("threads", threads);
    race.Set("p50_ms_speculation_off", p50_off);
    race.Set("p99_ms_speculation_off", p99_off);
    race.Set("p50_ms_speculation_on", p50_on);
    race.Set("p99_ms_speculation_on", p99_on);
    race.Set("p99_speedup", p99_on > 0.0 ? p99_off / p99_on : 0.0);
    race.Set("plans_raced", on_total.plans_raced);
    race.Set("race_wins_by_runnerup", on_total.race_wins_by_runnerup);
    race.Set("speculative_work_wasted_rows",
             on_total.speculative_work_wasted_rows);
    race.Set("replans_triggered", on_total.replans_triggered);
    race.Set("race_loser_abort_ms_total", on_total.race_loser_abort_ms);
    race.Set("wasted_work_fraction", wasted_fraction);
    // The speculating engine's calibration log: feed these records to
    // scripts/fit_estimator_correction.py to close the estimation loop
    // (the poisoned classes fit multipliers far from 1.0).
    out.Set("calibration", CalibrationLogToJson(on->calibration_log()));

    for (const bool speculation_on : {false, true}) {
      const std::vector<double>& ms = speculation_on ? on_ms : off_ms;
      MicroResult r;
      r.name = StrFormat("plan_race/speculation:%s",
                         speculation_on ? "on" : "off");
      r.iterations = ms.size();
      for (double m : ms) r.total_ms += m;
      r.ns_per_iter = r.total_ms * 1e6 / static_cast<double>(ms.size());
      results.push_back(std::move(r));
    }
  }

  const std::vector<int> widths = {38, 12, 14, 16};
  PrintRow({"benchmark", "iters", "ns/iter", "items/s"}, widths);
  PrintRule(widths);
  Json& benchmarks = out.Set("benchmarks", Json::Array());
  for (const MicroResult& r : results) {
    PrintRow({r.name,
              StrFormat("%llu", static_cast<unsigned long long>(r.iterations)),
              StrFormat("%.1f", r.ns_per_iter),
              r.items_per_iter == 0 ? std::string("-")
                                    : StrFormat("%.3g", r.items_per_second)},
             widths);
    Json& j = benchmarks.Push(Json::Object());
    j.Set("name", r.name);
    j.Set("iterations", r.iterations);
    j.Set("total_ms", r.total_ms);
    j.Set("ns_per_iter", r.ns_per_iter);
    if (r.items_per_iter > 0) {
      j.Set("items_per_iter", r.items_per_iter);
      j.Set("items_per_second", r.items_per_second);
    }
    if (r.speedup_vs_serial > 0.0) {
      j.Set("speedup_vs_serial", r.speedup_vs_serial);
    }
  }
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "micro_operators",
                                  &specqp::bench::Run);
}
