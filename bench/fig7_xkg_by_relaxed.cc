// Reproduces Figure 7: runtimes and memory of TriniT (T) vs Spec-QP (S)
// over the XKG workload, grouped by the number of triple patterns the
// Spec-QP plan relaxed (0-4), for k in {10, 15, 20}.
//
// Paper shape: largest gains when 0 patterns are relaxed; the two systems
// converge as more patterns are relaxed; when all patterns are relaxed,
// Spec-QP's runtime is slightly above TriniT's (planning overhead) and its
// memory equals TriniT's.

#include "bench_common.h"

namespace specqp::bench {
namespace {

void Run(Json& out) {
  const XkgBundle& xkg = GetXkg();
  out.Set("dataset", "xkg");
  out.Set("num_triples", xkg.data.store.size());
  out.Set("num_queries", xkg.workload.size());
  Engine engine(&xkg.data.store, &xkg.data.rules, MakeEngineOptions());
  RunEfficiencyFigure(
      "Figure 7: XKG runtimes & memory, T vs S, by #patterns relaxed by "
      "Spec-QP",
      engine, xkg.workload, GroupBy::kPatternsRelaxed, out);
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "fig7_xkg_by_relaxed",
                                  &specqp::bench::Run);
}
