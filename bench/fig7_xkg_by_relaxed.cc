// Reproduces Figure 7: runtimes and memory of TriniT (T) vs Spec-QP (S)
// over the XKG workload, grouped by the number of triple patterns the
// Spec-QP plan relaxed (0-4), for k in {10, 15, 20}.
//
// Paper shape: largest gains when 0 patterns are relaxed; the two systems
// converge as more patterns are relaxed; when all patterns are relaxed,
// Spec-QP's runtime is slightly above TriniT's (planning overhead) and its
// memory equals TriniT's.

#include "bench_common.h"

int main() {
  using namespace specqp;
  using namespace specqp::bench;
  const XkgBundle& xkg = GetXkg();
  Engine engine(&xkg.data.store, &xkg.data.rules);
  RunEfficiencyFigure(
      "Figure 7: XKG runtimes & memory, T vs S, by #patterns relaxed by "
      "Spec-QP",
      engine, xkg.workload, GroupBy::kPatternsRelaxed);
  return 0;
}
