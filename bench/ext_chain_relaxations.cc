// Extension E1 (the paper's section-6 future work): chain relaxations —
// "replacing a triple pattern with a chain of triple patterns". An XKG
// variant with a <relatedTo> value graph is generated; chain rules
// (?s <attr> <v>) ~> (?s <attr> ?z)(?z <relatedTo> <v>) are mined alongside
// the simple rules, and the workload runs with and without them.
//
// Reported: answer availability (how often the top-k can be filled),
// top-k score mass, runtime, and memory, for TriniT and Spec-QP.

#include <string>
#include <vector>

#include "bench_common.h"
#include "datasets/workload.h"
#include "datasets/xkg_generator.h"
#include "util/string_util.h"

namespace specqp::bench {
namespace {

struct RunStats {
  Aggregate filled;     // fraction of k answers produced
  Aggregate top_score;  // best answer score
  Aggregate runtime_ms;
  Aggregate objects;
};

RunStats RunWorkload(Engine& engine, const std::vector<Query>& workload,
                     Strategy strategy, size_t k) {
  RunStats stats;
  for (const Query& query : workload) {
    engine.Warm(query);
    const Engine::QueryResult result = RunQuery(engine, query, k, strategy);
    stats.filled.Add(static_cast<double>(result.rows.size()) /
                     static_cast<double>(k));
    stats.top_score.Add(result.rows.empty() ? 0.0 : result.rows[0].score);
    stats.runtime_ms.Add(result.stats.plan_ms + result.stats.exec_ms);
    stats.objects.Add(static_cast<double>(result.stats.answer_objects));
  }
  return stats;
}

Json RunStatsJson(const char* name, const RunStats& stats) {
  Json j = Json::Object();
  j.Set("configuration", name);
  j.Set("top_k_fill", stats.filled.Mean());
  j.Set("top_score_mean", stats.top_score.Mean());
  j.Set("runtime_ms_mean", stats.runtime_ms.Mean());
  j.Set("answer_objects_mean", stats.objects.Mean());
  j.Set("queries", stats.filled.count);
  return j;
}

void Run(Json& out) {
  PrintTitle(
      "Extension E1: chain relaxations (paper section 6 future work) — "
      "simple rules only vs simple + chain rules");

  // A compact XKG with the value graph enabled. Queries target sparse
  // originals so the relaxation space is what fills the top-k.
  XkgConfig config;
  config.seed = 2024;
  config.num_entities = 15000;
  config.num_domains = 12;
  config.types_per_domain = 12;
  config.num_attributes = 4;
  config.values_per_attribute = 12;
  config.generate_value_graph = true;
  const XkgDataset with_chains = GenerateXkg(config);

  // Rule-set variants over the same store, so runtimes are comparable:
  // no rules at all, simple rules only, chain rules only, and both.
  RelaxationIndex no_rules;
  RelaxationIndex simple_only;
  for (const RelaxationRule& rule : with_chains.rules.AllRules()) {
    SPECQP_CHECK(simple_only.AddRule(rule).ok());
  }
  RelaxationIndex chains_only;
  {
    // Chain rules live per domain pattern; collect them via the attribute
    // vocabulary.
    for (size_t d = 0; d < with_chains.attribute_values.size(); ++d) {
      for (size_t a = 0; a < with_chains.attribute_values[d].size(); ++a) {
        for (TermId value : with_chains.attribute_values[d][a]) {
          const PatternKey key{kInvalidTermId,
                               with_chains.attribute_predicates[a], value};
          for (const ChainRelaxationRule& rule :
               with_chains.rules.ChainRulesFor(key)) {
            SPECQP_CHECK(chains_only.AddChainRule(rule).ok());
          }
        }
      }
    }
  }

  XkgWorkloadConfig wl;
  wl.seed = 31;
  wl.queries_per_size = 10;
  wl.min_relaxations = 5;
  wl.cardinality_bands = {{1, 6}};  // recall-starved queries
  const std::vector<Query> workload = MakeXkgWorkload(with_chains, wl);

  std::printf("dataset: %zu triples, %zu simple rules, %zu chain rules, "
              "%zu queries\n",
              with_chains.store.size(), with_chains.rules.total_rules(),
              with_chains.rules.total_chain_rules(), workload.size());

  const size_t k = 10;
  Engine engine_none(&with_chains.store, &no_rules, MakeEngineOptions());
  Engine engine_simple(&with_chains.store, &simple_only, MakeEngineOptions());
  Engine engine_chains(&with_chains.store, &chains_only, MakeEngineOptions());
  Engine engine_both(&with_chains.store, &with_chains.rules, MakeEngineOptions());

  const std::vector<int> widths = {30, 12, 12, 14, 14};
  PrintRow({"configuration", "top-k fill", "top score", "runtime ms",
            "mem objects"},
           widths);
  PrintRule(widths);
  out.Set("num_triples", with_chains.store.size());
  out.Set("num_simple_rules", with_chains.rules.total_rules());
  out.Set("num_chain_rules", with_chains.rules.total_chain_rules());
  out.Set("num_queries", workload.size());
  out.Set("k", k);
  Json& configs = out.Set("configurations", Json::Array());
  auto row = [&](const char* name, const RunStats& stats) {
    configs.Push(RunStatsJson(name, stats));
    PrintRow({name, StrFormat("%.2f", stats.filled.Mean()),
              StrFormat("%.3f", stats.top_score.Mean()),
              StrFormat("%.3f", stats.runtime_ms.Mean()),
              StrFormat("%.0f", stats.objects.Mean())},
             widths);
  };
  row("TriniT, no relaxations",
      RunWorkload(engine_none, workload, Strategy::kTrinit, k));
  row("TriniT, chains only",
      RunWorkload(engine_chains, workload, Strategy::kTrinit, k));
  row("TriniT, simple only",
      RunWorkload(engine_simple, workload, Strategy::kTrinit, k));
  row("TriniT, simple + chains",
      RunWorkload(engine_both, workload, Strategy::kTrinit, k));
  row("Spec-QP, simple only",
      RunWorkload(engine_simple, workload, Strategy::kSpecQp, k));
  row("Spec-QP, simple + chains",
      RunWorkload(engine_both, workload, Strategy::kSpecQp, k));

  std::printf(
      "\nShape check: chains raise top-k fill and/or score mass (more of "
      "the relaxation space is reachable) at additional operator cost; "
      "Spec-QP keeps its advantage over TriniT in both configurations.\n");
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "ext_chain_relaxations",
                                  &specqp::bench::Run);
}
