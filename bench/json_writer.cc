#include "json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"

namespace specqp::bench {

namespace {

void AppendEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Shortest representation of `v` that parses back to the same double.
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "null";
  for (int precision = 6; precision <= 17; ++precision) {
    std::string s = StrFormat("%.*g", precision, v);
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  return StrFormat("%.17g", v);
}

void AppendIndent(int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

}  // namespace

Json& Json::Push(Json v) {
  SPECQP_CHECK(type_ == Type::kArray) << "Push on non-array JSON value";
  array_.push_back(std::move(v));
  return array_.back();
}

Json& Json::Set(std::string key, Json v) {
  SPECQP_CHECK(type_ == Type::kObject) << "Set on non-object JSON value";
  object_.emplace_back(std::move(key), std::move(v));
  return object_.back().second;
}

void Json::DumpTo(std::string* out, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      *out += StrFormat("%lld", static_cast<long long>(int_));
      break;
    case Type::kUint:
      *out += StrFormat("%llu", static_cast<unsigned long long>(uint_));
      break;
    case Type::kDouble:
      *out += FormatDouble(double_);
      break;
    case Type::kString:
      AppendEscaped(string_, out);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        AppendIndent(depth + 1, out);
        array_[i].DumpTo(out, depth + 1);
        if (i + 1 < array_.size()) out->push_back(',');
        out->push_back('\n');
      }
      AppendIndent(depth, out);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      for (size_t i = 0; i < object_.size(); ++i) {
        AppendIndent(depth + 1, out);
        AppendEscaped(object_[i].first, out);
        *out += ": ";
        object_[i].second.DumpTo(out, depth + 1);
        if (i + 1 < object_.size()) out->push_back(',');
        out->push_back('\n');
      }
      AppendIndent(depth, out);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out.push_back('\n');
  return out;
}

bool WriteJsonFile(const std::string& path, const Json& doc,
                   std::string* error) {
  // Write-to-temp + rename so an interrupted or failed write never
  // destroys a pre-existing artifact at `path`.
  const std::string tmp_path = path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + tmp_path + " for writing";
    return false;
  }
  const std::string text = doc.Dump();
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !closed) {
    if (error != nullptr) *error = "short write to " + tmp_path;
    std::remove(tmp_path.c_str());
    return false;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + tmp_path + " to " + path;
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

}  // namespace specqp::bench
