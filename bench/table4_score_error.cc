// Reproduces Table 4: average absolute score deviation (and standard
// deviation, and percentage of the true score) of Spec-QP's approximate
// top-k from the true top-k, grouped by the number of triple patterns in
// the query, for k in {10, 15, 20}.
//
// Paper shape: small errors (a few percent of the maximum score) shrinking
// as k grows; XKG 2TP at k=10 around 0.1 (5%), dropping to ~0.01 (1%) for
// 4TP at k=20; Twitter 3TP at k=10 around 0.5 (16%) dropping to 0.18 (6%).

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/string_util.h"

namespace specqp::bench {
namespace {

struct ErrorStats {
  double sum = 0.0;
  double sum_sq = 0.0;
  double pct_sum = 0.0;
  size_t count = 0;

  void Add(const QualityMetrics& m) {
    sum += m.score_error_mean;
    sum_sq += m.score_error_mean * m.score_error_mean;
    pct_sum += m.score_error_pct;
    ++count;
  }
  double Mean() const { return count == 0 ? 0.0 : sum / count; }
  double Std() const {
    if (count == 0) return 0.0;
    const double mean = Mean();
    return std::sqrt(std::max(sum_sq / count - mean * mean, 0.0));
  }
  double Pct() const { return count == 0 ? 0.0 : pct_sum / count; }
};

// Prints one dataset's table and returns the same per-(k, group) stats as
// the JSON node for the artifact — computed once, feeding both outputs.
Json PrintDataset(const char* name,
                  const std::vector<QueryEvaluation>& evals,
                  const std::vector<size_t>& pattern_groups) {
  PrintSubtitle(StrFormat("%s: mean|err| (%%of true) ± std, by #patterns",
                          name));
  std::vector<int> widths = {6};
  for (size_t i = 0; i < pattern_groups.size(); ++i) widths.push_back(24);
  std::vector<std::string> header = {"k"};
  for (size_t g : pattern_groups) header.push_back(StrFormat("%zuTP", g));
  PrintRow(header, widths);
  PrintRule(widths);

  Json d = Json::Object();
  d.Set("dataset", name);
  Json& by_k = d.Set("by_k", Json::Array());
  for (size_t k : kTopKs) {
    Json& k_json = by_k.Push(Json::Object());
    k_json.Set("k", k);
    Json& groups = k_json.Set("groups", Json::Array());
    std::vector<std::string> row = {StrFormat("%zu", k)};
    for (size_t group : pattern_groups) {
      ErrorStats stats;
      for (const QueryEvaluation& eval : evals) {
        if (eval.query->num_patterns() != group) continue;
        stats.Add(eval.by_k.at(k));
      }
      row.push_back(stats.count == 0
                        ? std::string("-")
                        : StrFormat("%.3f(%.0f%%)±%.3f", stats.Mean(),
                                    stats.Pct(), stats.Std()));
      Json& g = groups.Push(Json::Object());
      g.Set("num_patterns", group);
      g.Set("queries", stats.count);
      g.Set("score_error_mean", stats.Mean());
      g.Set("score_error_std", stats.Std());
      g.Set("score_error_pct", stats.Pct());
    }
    PrintRow(row, widths);
  }
  return d;
}

void Run(Json& out) {
  PrintTitle(
      "Table 4: Average score deviation of Spec-QP top-k vs true top-k "
      "(paper: XKG <= ~0.2/8%, Twitter <= ~0.5/16%, shrinking with k)");

  Json& datasets = out.Set("datasets", Json::Array());

  const XkgBundle& xkg = GetXkg();
  Engine xkg_engine(&xkg.data.store, &xkg.data.rules, MakeEngineOptions());
  ExhaustiveEvaluator xkg_oracle(&xkg.data.store, &xkg.data.rules);
  const auto xkg_evals =
      EvaluateWorkloadQuality(xkg_engine, xkg_oracle, xkg.workload);
  datasets.Push(PrintDataset("xkg", xkg_evals, {2, 3, 4}));

  const TwitterBundle& twitter = GetTwitter();
  Engine tw_engine(&twitter.data.store, &twitter.data.rules, MakeEngineOptions());
  ExhaustiveEvaluator tw_oracle(&twitter.data.store, &twitter.data.rules);
  const auto tw_evals =
      EvaluateWorkloadQuality(tw_engine, tw_oracle, twitter.workload);
  datasets.Push(PrintDataset("twitter", tw_evals, {2, 3}));
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "table4_score_error",
                                  &specqp::bench::Run);
}
