// Batched vs sequential execution of a 50-query template workload:
// repeated patterns, varying constants, and duplicate queries — the
// serving-traffic shape BatchExecutor amortises. The store is saved as a
// v3 file and served memory-mapped, so per-predicate base lists are
// zero-copy block views and the batch's shared scans derive every
// object-bound posting list from one pass instead of one probe-and-sort
// per key.
//
// Reported per strategy: cold wall time (fresh engine, empty caches) and
// warm wall time (same engine again) for both modes, the speedup, the
// shared-scan ledger, and an answers_match bit-equality check against
// sequential execution. The acceptance bar from the batch-execution work
// is speedup_cold >= 1.5 for Spec-QP at equal thread count.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/batch_executor.h"
#include "core/engine.h"
#include "rdf/store_io.h"
#include "relax/relaxation_index.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace specqp::bench {
namespace {

constexpr size_t kNumSubjects = 48000;
constexpr size_t kNumObjects = 16;
constexpr size_t kNumQueries = 50;
constexpr size_t kTopK = 10;

struct BatchFixture {
  TripleStore built;  // only used to write the store file
  RelaxationIndex rules;
  std::string store_path;
  TermId p0 = kInvalidTermId;
  TermId p1 = kInvalidTermId;
  std::vector<TermId> objects;  // interned names, shared by both predicates
  std::vector<std::string> object_names;
};

BatchFixture& Fixture() {
  static auto* fx = [] {
    auto* f = new BatchFixture;
    Dictionary& dict = f->built.dict();
    f->p0 = dict.Intern("follows_topic");
    f->p1 = dict.Intern("posts_about");
    for (size_t o = 0; o < kNumObjects; ++o) {
      f->object_names.push_back("topic" + std::to_string(o));
      f->objects.push_back(dict.Intern(f->object_names.back()));
    }
    // One triple per predicate per subject; the object assignment is a
    // fixed pseudo-random hash so posting lists are balanced
    // (~kNumSubjects/kNumObjects entries each) and uncorrelated with the
    // power-law scores.
    for (size_t s = 0; s < kNumSubjects; ++s) {
      const TermId subject = dict.Intern("user" + std::to_string(s));
      const double score = 1e6 / static_cast<double>((s % 1000) + 1);
      f->built.AddEncoded(subject, f->p0,
                          f->objects[(s * 2654435761u) % kNumObjects], score);
      f->built.AddEncoded(subject, f->p1,
                          f->objects[(s * 40503u + 7) % kNumObjects], score);
    }
    f->built.Finalize();
    // Relaxations: each topic relaxes to the next two, decaying weights —
    // enough to engage PLANGEN and the incremental merges.
    for (const TermId p : {f->p0, f->p1}) {
      for (size_t o = 0; o < kNumObjects; ++o) {
        for (size_t j = 1; j <= 2; ++j) {
          RelaxationRule rule;
          rule.from = PatternKey{kInvalidTermId, p, f->objects[o]};
          rule.to =
              PatternKey{kInvalidTermId, p, f->objects[(o + j) % kNumObjects]};
          rule.weight = 0.9 / static_cast<double>(j + 1);
          (void)f->rules.AddRule(rule);
        }
      }
    }
    f->store_path = "micro_batch_store.sqp";
    const Status saved = SaveStore(f->built, f->store_path);
    SPECQP_CHECK(saved.ok()) << saved.ToString();
    return f;
  }();
  return *fx;
}

// The template workload: 20 distinct queries (14 two-pattern, 6
// three-pattern star joins with varying topic constants), re-issued
// round-robin up to 50 requests — the Zipf-ish shape of serving traffic,
// where a batch window holds each hot template two or three times.
std::vector<Query> MakeWorkload(const BatchFixture& fx) {
  std::vector<Query> workload;
  auto star = [&](const std::vector<std::pair<TermId, size_t>>& patterns) {
    Query query;
    const VarId s = query.GetOrAddVariable("s");
    for (const auto& [p, o] : patterns) {
      query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                     PatternTerm::Const(p),
                                     PatternTerm::Const(fx.objects[o])));
    }
    query.AddProjection(s);
    return query;
  };
  constexpr size_t kNumDistinct = 20;
  for (size_t i = 0; i < 14; ++i) {
    workload.push_back(star({{fx.p0, i % kNumObjects},
                             {fx.p1, (i * 5 + 3) % kNumObjects}}));
  }
  for (size_t i = 14; i < kNumDistinct; ++i) {
    workload.push_back(star({{fx.p0, i % kNumObjects},
                             {fx.p1, (i * 3) % kNumObjects},
                             {fx.p1, (i * 7 + 5) % kNumObjects}}));
  }
  for (size_t i = 0; workload.size() < kNumQueries; ++i) {
    workload.push_back(workload[i % kNumDistinct]);
  }
  return workload;
}

Engine::Opened OpenEngine(const BatchFixture& fx) {
  auto opened = Engine::OpenFromPath(fx.store_path, &fx.rules,
                                     MakeEngineOptions());
  SPECQP_CHECK(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

bool RowsIdentical(const std::vector<Engine::QueryResult>& a,
                   const std::vector<Engine::QueryResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].rows.size() != b[q].rows.size()) return false;
    for (size_t r = 0; r < a[q].rows.size(); ++r) {
      if (a[q].rows[r].bindings != b[q].rows[r].bindings ||
          a[q].rows[r].score != b[q].rows[r].score) {
        return false;
      }
    }
  }
  return true;
}

void Run(Json& out) {
  PrintTitle("Batched vs sequential query execution (50-query template "
             "workload)");
  BatchFixture& fx = Fixture();
  const std::vector<Query> workload = MakeWorkload(fx);

  Json& config = out.Set("config", Json::Object());
  config.Set("triples", fx.built.size());
  config.Set("queries", workload.size());
  config.Set("objects_per_predicate", kNumObjects);
  config.Set("k", kTopK);
  config.Set("store", "v2 mmap");

  const std::vector<int> widths = {10, 18, 18, 10, 18, 10};
  PrintRow({"strategy", "sequential ms", "batched ms", "speedup",
            "shared hits", "match"},
           widths);
  PrintRule(widths);

  Json& runs = out.Set("runs", Json::Array());
  double headline_speedup = 0.0;
  bool all_match = true;
  for (const Strategy strategy : {Strategy::kSpecQp, Strategy::kTrinit}) {
    // Cold: fresh engines, empty caches — the serving scenario where the
    // batch amortises scan building, statistics, and duplicate queries.
    Engine::Opened sequential_engine = OpenEngine(fx);
    WallTimer seq_timer;
    std::vector<Engine::QueryResult> sequential_results;
    sequential_results.reserve(workload.size());
    for (const Query& query : workload) {
      sequential_results.push_back(
          RunQuery(*sequential_engine.engine, query, kTopK, strategy));
    }
    const double sequential_cold_ms = seq_timer.ElapsedMillis();

    Engine::Opened batch_engine = OpenEngine(fx);
    WallTimer batch_timer;
    BatchStats batch_stats;
    const auto batched_results = RunBatch(*batch_engine.engine, workload,
                                          kTopK, strategy, &batch_stats);
    const double batched_cold_ms = batch_timer.ElapsedMillis();

    // Warm repeats on the same engines (caches and memos populated).
    WallTimer seq_warm_timer;
    for (const Query& query : workload) {
      RunQuery(*sequential_engine.engine, query, kTopK, strategy);
    }
    const double sequential_warm_ms = seq_warm_timer.ElapsedMillis();
    WallTimer batch_warm_timer;
    BatchStats warm_stats;
    RunBatch(*batch_engine.engine, workload, kTopK, strategy, &warm_stats);
    const double batched_warm_ms = batch_warm_timer.ElapsedMillis();

    const bool match = RowsIdentical(sequential_results, batched_results);
    all_match = all_match && match;
    const double speedup_cold =
        batched_cold_ms > 0.0 ? sequential_cold_ms / batched_cold_ms : 0.0;
    const double speedup_warm =
        batched_warm_ms > 0.0 ? sequential_warm_ms / batched_warm_ms : 0.0;
    if (strategy == Strategy::kSpecQp) headline_speedup = speedup_cold;

    Json& run = runs.Push(Json::Object());
    run.Set("strategy", std::string(StrategyName(strategy)));
    run.Set("k", kTopK);
    run.Set("sequential_cold_ms", sequential_cold_ms);
    run.Set("batched_cold_ms", batched_cold_ms);
    run.Set("speedup_cold", speedup_cold);
    run.Set("sequential_warm_ms", sequential_warm_ms);
    run.Set("batched_warm_ms", batched_warm_ms);
    run.Set("speedup_warm", speedup_warm);
    run.Set("answers_match", match);
    run.Set("batch", BatchStatsToJson(batch_stats));

    PrintRow({std::string(StrategyName(strategy)),
              StrFormat("%.1f", sequential_cold_ms),
              StrFormat("%.1f", batched_cold_ms),
              StrFormat("%.2fx", speedup_cold),
              StrFormat("%llu", static_cast<unsigned long long>(
                                    batch_stats.shared_scan_hits)),
              match ? "yes" : "NO"},
             widths);
    std::printf(
        "  %s: %zu queries -> %zu executed, %llu lists resolved "
        "(%llu derived from %llu base scans), warm %.1f ms vs %.1f ms\n",
        std::string(StrategyName(strategy)).c_str(), batch_stats.batch_size,
        batch_stats.distinct_queries,
        static_cast<unsigned long long>(batch_stats.lists_resolved),
        static_cast<unsigned long long>(batch_stats.lists_derived),
        static_cast<unsigned long long>(batch_stats.base_scans),
        batched_warm_ms, sequential_warm_ms);
  }
  out.Set("speedup_cold_spec_qp", headline_speedup);
  out.Set("answers_match", all_match);
  std::printf("\nAcceptance bar: Spec-QP cold speedup >= 1.5 (measured "
              "%.2fx), answers bit-identical (%s).\n",
              headline_speedup, all_match ? "yes" : "NO");

  std::remove(Fixture().store_path.c_str());
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "micro_batch",
                                  &specqp::bench::Run);
}
