// Reproduces Table 3: prediction accuracy grouped by the number of triple
// patterns *requiring* relaxation in the true top-k, for k in {10, 15, 20}.
// Each cell is "correct(total)": of `total` queries whose ground truth
// requires exactly that many relaxed patterns, `correct` had PLANGEN
// predict exactly that set of relaxations.
//
// Paper shape: accuracy >= ~70% per populated group; as k grows, queries
// migrate towards needing more relaxations; Twitter mass concentrates in
// the "all patterns relaxed" rows.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/string_util.h"

namespace specqp::bench {
namespace {

struct GroupCounts {
  size_t total = 0;
  size_t correct = 0;
};

// group key: number of patterns whose relaxations the true top-k requires.
using Table = std::map<size_t, std::map<size_t, GroupCounts>>;  // k -> group

Table BuildTable(const std::vector<QueryEvaluation>& evals) {
  Table table;
  for (const QueryEvaluation& eval : evals) {
    for (size_t k : kTopKs) {
      const QualityMetrics& m = eval.by_k.at(k);
      GroupCounts& cell = table[k][m.required_relaxations];
      ++cell.total;
      if (m.prediction_exact) ++cell.correct;
    }
  }
  return table;
}

void PrintDatasetTable(const char* name, const Table& table,
                       size_t max_group) {
  PrintSubtitle(StrFormat("%s: correct(total) per #patterns requiring "
                          "relaxation",
                          name));
  std::vector<int> widths = {34};
  for (size_t i = 0; i < std::size(kTopKs); ++i) widths.push_back(12);
  std::vector<std::string> header = {"queries requiring"};
  for (size_t k : kTopKs) header.push_back(StrFormat("k=%zu", k));
  PrintRow(header, widths);
  PrintRule(widths);
  for (size_t group = 0; group <= max_group; ++group) {
    std::vector<std::string> row = {
        StrFormat("%zu relaxation%s", group, group == 1 ? "" : "s")};
    bool any = false;
    for (size_t k : kTopKs) {
      auto kit = table.find(k);
      const GroupCounts cell = (kit != table.end() && kit->second.count(group))
                                   ? kit->second.at(group)
                                   : GroupCounts{};
      if (cell.total > 0) any = true;
      row.push_back(cell.total == 0
                        ? std::string("-")
                        : StrFormat("%zu(%zu)", cell.correct, cell.total));
    }
    if (any) PrintRow(row, widths);
  }

  // Overall exact-prediction rate per k.
  std::vector<std::string> totals = {"overall accuracy"};
  for (size_t k : kTopKs) {
    size_t total = 0;
    size_t correct = 0;
    auto kit = table.find(k);
    if (kit != table.end()) {
      for (const auto& [group, cell] : kit->second) {
        total += cell.total;
        correct += cell.correct;
      }
    }
    totals.push_back(total == 0
                         ? std::string("-")
                         : StrFormat("%.0f%%", 100.0 * correct / total));
  }
  PrintRule(widths);
  PrintRow(totals, widths);
}

Json TableToJson(const char* name, const Table& table) {
  Json d = Json::Object();
  d.Set("dataset", name);
  Json& by_k = d.Set("by_k", Json::Array());
  for (size_t k : kTopKs) {
    Json& k_json = by_k.Push(Json::Object());
    k_json.Set("k", k);
    size_t total = 0;
    size_t correct = 0;
    Json& groups = k_json.Set("groups", Json::Array());
    auto kit = table.find(k);
    if (kit != table.end()) {
      for (const auto& [group, cell] : kit->second) {
        Json& g = groups.Push(Json::Object());
        g.Set("required_relaxations", group);
        g.Set("total", cell.total);
        g.Set("correct", cell.correct);
        total += cell.total;
        correct += cell.correct;
      }
    }
    k_json.Set("overall_accuracy",
               total == 0 ? 0.0 : static_cast<double>(correct) / total);
  }
  return d;
}

void Run(Json& out) {
  PrintTitle(
      "Table 3: Prediction accuracy grouped by #patterns requiring "
      "relaxations (paper: >= ~70% per group; Twitter concentrated in "
      "all-patterns-relaxed)");

  Json& datasets = out.Set("datasets", Json::Array());

  const XkgBundle& xkg = GetXkg();
  Engine xkg_engine(&xkg.data.store, &xkg.data.rules, MakeEngineOptions());
  ExhaustiveEvaluator xkg_oracle(&xkg.data.store, &xkg.data.rules);
  const Table xkg_table =
      BuildTable(EvaluateWorkloadQuality(xkg_engine, xkg_oracle,
                                         xkg.workload));
  PrintDatasetTable("XKG", xkg_table, 4);
  datasets.Push(TableToJson("xkg", xkg_table));

  const TwitterBundle& twitter = GetTwitter();
  Engine tw_engine(&twitter.data.store, &twitter.data.rules, MakeEngineOptions());
  ExhaustiveEvaluator tw_oracle(&twitter.data.store, &twitter.data.rules);
  const Table tw_table =
      BuildTable(EvaluateWorkloadQuality(tw_engine, tw_oracle,
                                         twitter.workload));
  PrintDatasetTable("Twitter", tw_table, 3);
  datasets.Push(TableToJson("twitter", tw_table));
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "table3_prediction_accuracy",
                                  &specqp::bench::Run);
}
