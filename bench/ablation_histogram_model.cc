// Ablation A1 (paper section 4.5.2 remark): the 2-bucket histogram is only
// an approximation of the score distribution; "multi-bucket histograms"
// would model it more exactly at higher planning cost. This bench compares
// PLANGEN under the paper's two-bucket model against an exact gridded
// distribution (no refit between convolutions) on the XKG workload:
// prediction accuracy vs mean planning time.

#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace specqp::bench {
namespace {

struct ModelResult {
  std::map<size_t, double> accuracy_by_k;  // fraction of exact predictions
  double mean_plan_ms = 0.0;
};

ModelResult RunModel(const XkgBundle& xkg,
                     ExpectedScoreEstimator::Model model,
                     const std::vector<std::map<size_t, std::vector<size_t>>>&
                         required_by_query) {
  EngineOptions options = MakeEngineOptions();
  options.estimator_model = model;
  Engine engine(&xkg.data.store, &xkg.data.rules, options);

  ModelResult result;
  std::map<size_t, size_t> correct;
  double plan_ms_total = 0.0;
  size_t plans = 0;

  for (size_t qi = 0; qi < xkg.workload.size(); ++qi) {
    const Query& query = xkg.workload[qi];
    engine.Warm(query);
    for (size_t k : kTopKs) {
      WallTimer timer;
      QueryPlan plan = engine.PlanOnly(query, k);
      plan_ms_total += timer.ElapsedMillis();
      ++plans;
      std::vector<size_t> predicted = plan.singletons;
      std::sort(predicted.begin(), predicted.end());
      if (predicted == required_by_query[qi].at(k)) ++correct[k];
    }
  }
  for (size_t k : kTopKs) {
    result.accuracy_by_k[k] =
        static_cast<double>(correct[k]) /
        static_cast<double>(xkg.workload.size());
  }
  result.mean_plan_ms = plan_ms_total / static_cast<double>(plans);
  return result;
}

Json ModelJson(const char* name, const ModelResult& r) {
  Json j = Json::Object();
  j.Set("model", name);
  Json& by_k = j.Set("accuracy_by_k", Json::Array());
  for (size_t k : kTopKs) {
    Json& e = by_k.Push(Json::Object());
    e.Set("k", k);
    e.Set("accuracy", r.accuracy_by_k.at(k));
  }
  j.Set("mean_plan_ms", r.mean_plan_ms);
  return j;
}

void Run(Json& out) {
  PrintTitle(
      "Ablation A1: two-bucket histogram (paper default) vs exact gridded "
      "distribution — prediction accuracy vs planning cost");

  const XkgBundle& xkg = GetXkg();

  // Ground-truth required relaxations per query per k.
  ExhaustiveEvaluator oracle(&xkg.data.store, &xkg.data.rules);
  std::vector<std::map<size_t, std::vector<size_t>>> required;
  required.reserve(xkg.workload.size());
  for (const Query& query : xkg.workload) {
    const auto truth = oracle.Evaluate(query);
    std::map<size_t, std::vector<size_t>> by_k;
    for (size_t k : kTopKs) by_k[k] = truth.RequiredRelaxations(k);
    required.push_back(std::move(by_k));
  }

  const ModelResult two_bucket =
      RunModel(xkg, ExpectedScoreEstimator::Model::kTwoBucket, required);
  const ModelResult exact_grid =
      RunModel(xkg, ExpectedScoreEstimator::Model::kExactGrid, required);

  const std::vector<int> widths = {24, 12, 12, 12, 16};
  PrintRow({"model", "acc k=10", "acc k=15", "acc k=20", "plan ms (mean)"},
           widths);
  PrintRule(widths);
  auto row = [&](const char* name, const ModelResult& r) {
    PrintRow({name, StrFormat("%.2f", r.accuracy_by_k.at(10)),
              StrFormat("%.2f", r.accuracy_by_k.at(15)),
              StrFormat("%.2f", r.accuracy_by_k.at(20)),
              StrFormat("%.4f", r.mean_plan_ms)},
             widths);
  };
  row("two-bucket (paper)", two_bucket);
  row("exact grid", exact_grid);

  Json& models = out.Set("models", Json::Array());
  models.Push(ModelJson("two_bucket", two_bucket));
  models.Push(ModelJson("exact_grid", exact_grid));

  std::printf(
      "\nShape check: the exact model should plan at least as accurately, "
      "at a visibly higher planning cost — the trade-off the paper cites "
      "for staying with two buckets.\n");
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "ablation_histogram_model",
                                  &specqp::bench::Run);
}
