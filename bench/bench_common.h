#ifndef SPECQP_BENCH_BENCH_COMMON_H_
#define SPECQP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/batch_executor.h"
#include "core/engine.h"
#include "core/exhaustive.h"
#include "datasets/evaluation.h"
#include "datasets/twitter_generator.h"
#include "datasets/workload.h"
#include "datasets/xkg_generator.h"
#include "json_writer.h"

namespace specqp::bench {

// --- unified benchmark driver -------------------------------------------------
//
// Every benchmark binary defines one entry point `void Run(Json& out)` that
// prints its human-readable report to stdout AND records the same numbers
// into `out`, then forwards to BenchMain from its main(). BenchMain owns
// the shared CLI:
//
//   <bench> [--json <path>] [--threads N] [--cache-budget-mb N] [--batch]
//           [--scale N] [--shards N] [--admit-batch N]
//
// --threads feeds EngineOptions::num_threads of every engine built through
// MakeEngineOptions()/ApplyBenchConfig() (0 = $SPECQP_THREADS, default
// serial); --cache-budget-mb bounds the posting-list cache; --batch makes
// the workload benches additionally measure BatchExecutor runs over each
// whole workload (per-k `batch` objects in the artifact); --scale grows
// the XKG/Twitter datasets by that factor (entities/tweets; 1 and 10 are
// the supported tiers, see GetXkg/GetTwitter); --admit-batch sets the
// admission window size of Submit-driven engines. All knobs, their
// resolved values, and the cache hit/miss/eviction counters are recorded
// in the artifact so the perf trajectory captures the configuration.
//
// With --json, the artifact is written as a single JSON document:
//   {"bench": <name>, "schema_version": 2, "git_sha": <sha>, ...,
//    "total_seconds": <t>}
// so `fig6`..`fig9`, the tables, and the ablations all emit comparable,
// machine-readable BENCH_*.json files for perf tracking; `git_sha` (from
// $SPECQP_GIT_SHA or $GITHUB_SHA, else "unknown") plus the echoed knobs
// make two artifacts comparable by scripts/compare_bench_json.py.
using BenchFn = void (*)(Json& out);
int BenchMain(int argc, char** argv, const std::string& name, BenchFn run);

// Engine options pre-filled with the CLI execution knobs (--threads,
// --cache-budget-mb) parsed by BenchMain.
void ApplyBenchConfig(EngineOptions* options);
EngineOptions MakeEngineOptions();

// Unified-API execution helpers: one immediate Submit per query (terminal
// status CHECKed — nothing on the pre-parsed path can fail), a
// BatchExecutor per pre-assembled batch. Text parse errors surface as the
// Result's status.
Engine::QueryResult RunQuery(Engine& engine, const Query& query, size_t k,
                             Strategy strategy);
Result<Engine::QueryResult> RunTextQuery(Engine& engine,
                                         const std::string& text, size_t k,
                                         Strategy strategy);
std::vector<Engine::QueryResult> RunBatch(Engine& engine,
                                          std::span<const Query> queries,
                                          size_t k, Strategy strategy,
                                          BatchStats* batch_stats = nullptr);

// True when --batch was passed: workload benches also measure batched
// execution.
bool BatchModeRequested();

// The --scale tier (>= 1) applied to the XKG/Twitter dataset generators.
size_t DatasetScale();

// The --shards count (>= 1, default 4) used by sharded-bundle (SQPBNDL1)
// bench variants; recorded as the "shard_count" artifact knob.
size_t BenchShards();

// Serialisation helpers shared by the benchmark binaries.
Json ExecStatsToJson(const ExecStats& stats);
Json QualityMetricsToJson(const QualityMetrics& metrics);
Json CacheStatsToJson(const PostingListCache& cache);
Json BatchStatsToJson(const BatchStats& stats);
// The engine's calibration log as {"patterns": [...], "queries": [...]} —
// archived in bench artifacts so scripts/fit_estimator_correction.py can
// fit correction tables from any run.
Json CalibrationLogToJson(const CalibrationLog& log);

// The k values evaluated throughout the paper (section 4.4).
inline constexpr size_t kTopKs[] = {10, 15, 20};

// A dataset plus its query workload, sized so the whole bench suite runs in
// minutes on a laptop while preserving the paper's workload structure
// (section 4.2: XKG 65 queries of 2-4 patterns with >= 10 relaxations each
// and non-empty originals; Twitter 50 queries of 2-3 patterns with >= 5
// relaxations).
struct XkgBundle {
  XkgDataset data;
  std::vector<Query> workload;  // grouped by pattern count: 2s, 3s, 4s
};

struct TwitterBundle {
  TwitterDataset data;
  std::vector<Query> workload;  // grouped: 2s then 3s
};

// Builds (lazily, once per process) the benchmark datasets. Generation is
// seeded and deterministic, so every bench binary sees identical data.
const XkgBundle& GetXkg();
const TwitterBundle& GetTwitter();

// Per-query cached evaluation shared by the quality tables: the exhaustive
// ground truth is computed once per query and reused across k.
struct QueryEvaluation {
  const Query* query;
  ExhaustiveEvaluator::EvalResult truth;
  std::map<size_t, QualityMetrics> by_k;  // k -> metrics
};

// Runs the quality evaluation for every query in `workload` under every k
// in kTopKs.
std::vector<QueryEvaluation> EvaluateWorkloadQuality(
    Engine& engine, const ExhaustiveEvaluator& oracle,
    const std::vector<Query>& workload);

// --- efficiency figures --------------------------------------------------------

struct EfficiencyRecord {
  size_t num_patterns = 0;
  size_t patterns_relaxed = 0;  // by the Spec-QP plan
  EfficiencyMetrics metrics;
};

// Measures every workload query under one k with the paper's warm-cache
// methodology (5 runs, average of last 3).
std::vector<EfficiencyRecord> MeasureWorkloadEfficiency(
    Engine& engine, const std::vector<Query>& workload, size_t k);

// Prints one figure family (runtimes + memory for k in {10,15,20}),
// grouped either by query size ("No. of triple patterns", Figures 6/8) or
// by the number of patterns the Spec-QP plan relaxed (Figures 7/9).
// Records per-query timings, answer counts, and operator ExecStats plus
// the per-group aggregates into `out`.
enum class GroupBy { kNumPatterns, kPatternsRelaxed };
void RunEfficiencyFigure(const std::string& title, Engine& engine,
                         const std::vector<Query>& workload, GroupBy group_by,
                         Json& out);

// --- table formatting ---------------------------------------------------------

void PrintTitle(const std::string& title);
void PrintSubtitle(const std::string& subtitle);
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);
void PrintRule(const std::vector<int>& widths);

// "0.91 (paper 0.91)" comparison cell.
std::string WithPaper(double measured, const char* paper_value);

}  // namespace specqp::bench

#endif  // SPECQP_BENCH_BENCH_COMMON_H_
