// Store-load microbenchmark: how fast a saved knowledge graph becomes
// queryable, v1 (parse + re-index) vs v2 (SQPSTOR2 zero-copy mmap) vs v3
// (SQPSTOR3 block-compressed postings) vs an N-shard SQPBNDL1 bundle of
// v3 shards (--shards, see docs/FORMATS.md). Reports cold (first load in
// this process) and warm (best of repeats, page cache hot) figures plus
// bytes_mapped per format — the v3 footprint reduction (delta-encoded
// posting blocks, no materialised SPO permutation) is the headline
// metric; the bundle rows price the N-way open-time merge and record the
// per-shard scatter-gather counters — and checks that all engines give
// identical answers.
//
// This is the measurement behind the "O(ms) load" line in ROADMAP.md: the
// mmap opens do no per-triple parsing, so their latency is (near)
// independent of store size while v1 parsing scales with it. The v3 open
// additionally synthesises the identity SPO view, a single O(triples)
// fill that trades a few ms for the smaller mapping.
//
// --scale multiplies the generated store (subjects/objects/triples); the
// v3-vs-v2 bytes_mapped reduction is tracked at scale 10 in CI.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "rdf/mmap_store.h"
#include "rdf/sharded_store.h"
#include "rdf/store_io.h"
#include "relax/relaxation_index.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "util/zipf.h"

namespace specqp::bench {
namespace {

constexpr size_t kNumSubjects = 30000;
constexpr size_t kNumPredicates = 12;
constexpr size_t kNumObjects = 4000;
constexpr size_t kNumTriples = 400000;
constexpr int kRepeats = 5;

// Set once after generation: Finalize() deduplicates (s,p,o), so the
// queryable store is slightly smaller than scale * kNumTriples.
size_t g_expected_triples = 0;

TripleStore BuildStore(size_t scale) {
  Rng rng(20260729);
  ZipfDistribution object_zipf(kNumObjects * scale, /*s=*/1.1);
  TripleStore store;
  Dictionary& dict = store.dict();
  std::vector<TermId> subjects;
  std::vector<TermId> predicates;
  std::vector<TermId> objects;
  for (size_t i = 0; i < kNumSubjects * scale; ++i) {
    subjects.push_back(dict.Intern("subject/" + std::to_string(i)));
  }
  for (size_t i = 0; i < kNumPredicates; ++i) {
    predicates.push_back(dict.Intern("predicate/" + std::to_string(i)));
  }
  for (size_t i = 0; i < kNumObjects * scale; ++i) {
    objects.push_back(dict.Intern("object/" + std::to_string(i)));
  }
  for (size_t i = 0; i < kNumTriples * scale; ++i) {
    const TermId s = subjects[rng.NextBounded(subjects.size())];
    const TermId p = predicates[rng.NextBounded(predicates.size())];
    const TermId o = objects[object_zipf.Sample(&rng)];
    store.AddEncoded(s, p, o, 1e6 / static_cast<double>((i % 10000) + 1));
  }
  store.Finalize();
  return store;
}

struct LoadTiming {
  double cold_ms = 0.0;  // first load in this process
  double warm_ms = 0.0;  // best of kRepeats
};

// Times `load` kRepeats times; `load` must fully construct a queryable
// store and return its triple count (consumed so the work is not elided).
template <typename Fn>
LoadTiming Measure(Fn load) {
  LoadTiming timing;
  for (int rep = 0; rep < kRepeats; ++rep) {
    WallTimer timer;
    const size_t triples = load();
    const double ms = timer.ElapsedMillis();
    SPECQP_CHECK(triples == g_expected_triples)
        << "load returned a wrong store";
    if (rep == 0) {
      timing.cold_ms = ms;
      timing.warm_ms = ms;
    } else {
      timing.warm_ms = std::min(timing.warm_ms, ms);
    }
  }
  return timing;
}

void Run(Json& out) {
  PrintTitle("micro_store_load — v1 parse vs v2/v3 mmap store open");

  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "specqp_micro_store_load";
  fs::create_directories(dir);
  const std::string v1_path = (dir / "store.v1.sqp").string();
  const std::string v2_path = (dir / "store.v2.sqp").string();
  const std::string v3_path = (dir / "store.v3.sqp").string();

  const size_t scale = DatasetScale();
  std::printf("generating %zu triples / %zu terms (scale %zu)...\n",
              kNumTriples * scale,
              (kNumSubjects + kNumObjects) * scale + kNumPredicates, scale);
  const TripleStore store = BuildStore(scale);
  g_expected_triples = store.size();
  RelaxationIndex no_rules;

  // Save all three formats; embed a small warmed stats snapshot in v2/v3.
  WallTimer save_timer;
  SPECQP_CHECK(SaveStoreV1(store, v1_path).ok());
  const double save_v1_ms = save_timer.ElapsedMillis();
  save_timer.Reset();
  double save_v2_ms = 0.0;
  {
    Engine warm(&store, &no_rules);
    for (TermId p = 0; p < store.dict().size(); ++p) {
      // Warm the per-predicate stats the planner consults first.
      if (store.dict().Name(p).rfind("predicate/", 0) == 0) {
        warm.catalog().GetStats(PatternKey{kInvalidTermId, p, kInvalidTermId});
      }
    }
    SaveStoreOptions save;
    save.stats = warm.catalog().Snapshot();
    save.stats_head_fraction = warm.catalog().head_fraction();
    save.format_version = 2;
    SPECQP_CHECK(SaveStore(store, v2_path, save).ok());
    save_v2_ms = save_timer.ElapsedMillis();
    save_timer.Reset();
    save.format_version = 3;
    SPECQP_CHECK(SaveStore(store, v3_path, save).ok());
  }
  const double save_v3_ms = save_timer.ElapsedMillis();
  // The sharded variant: the same store as an N-shard bundle of v3 files.
  const size_t shard_count = BenchShards();
  const std::string bundle_path = (dir / "store.bundle").string();
  save_timer.Reset();
  {
    ShardBundleOptions bundle_options;
    bundle_options.shard_count = static_cast<uint32_t>(shard_count);
    SPECQP_CHECK(WriteShardBundle(store, bundle_path, bundle_options).ok());
  }
  const double save_bundle_ms = save_timer.ElapsedMillis();
  const auto v1_bytes = fs::file_size(v1_path);
  const auto v2_bytes = fs::file_size(v2_path);
  const auto v3_bytes = fs::file_size(v3_path);

  // --- load timings ----------------------------------------------------------

  const LoadTiming v1_parse = Measure([&] {
    auto loaded = LoadStore(v1_path);
    SPECQP_CHECK(loaded.ok()) << loaded.status().ToString();
    return loaded.value().size();
  });
  const LoadTiming v2_parse = Measure([&] {
    auto loaded = LoadStore(v2_path);
    SPECQP_CHECK(loaded.ok()) << loaded.status().ToString();
    return loaded.value().size();
  });
  // The engine fast path: structural open + metadata checksums, bulk
  // sections verified lazily.
  size_t bytes_mapped_v2 = 0;
  const LoadTiming v2_mmap = Measure([&] {
    auto mapped = MmapStore::Open(v2_path);
    SPECQP_CHECK(mapped.ok()) << mapped.status().ToString();
    SPECQP_CHECK(mapped.value()->VerifyMetadataSections().ok());
    bytes_mapped_v2 = mapped.value()->bytes_mapped();
    return mapped.value()->store().size();
  });
  size_t bytes_mapped_v3 = 0;
  const LoadTiming v3_mmap = Measure([&] {
    auto mapped = MmapStore::Open(v3_path);
    SPECQP_CHECK(mapped.ok()) << mapped.status().ToString();
    SPECQP_CHECK(mapped.value()->VerifyMetadataSections().ok());
    bytes_mapped_v3 = mapped.value()->bytes_mapped();
    return mapped.value()->store().size();
  });
  // Fully checksummed opens (what LoadStore-grade integrity costs; for v3
  // this decode-validates every posting block).
  MmapStore::Options eager;
  eager.verify = MmapStore::Verify::kEager;
  const LoadTiming v2_mmap_eager = Measure([&] {
    auto mapped = MmapStore::Open(v2_path, eager);
    SPECQP_CHECK(mapped.ok()) << mapped.status().ToString();
    return mapped.value()->store().size();
  });
  const LoadTiming v3_mmap_eager = Measure([&] {
    auto mapped = MmapStore::Open(v3_path, eager);
    SPECQP_CHECK(mapped.ok()) << mapped.status().ToString();
    return mapped.value()->store().size();
  });
  // Bundle opens: N shard mmaps plus the open-time global SPO merge (the
  // price of scatter-gather); eager additionally CRC-verifies every shard
  // section and re-hashes every triple's shard assignment.
  size_t bytes_mapped_bundle = 0;
  const LoadTiming bundle_mmap = Measure([&] {
    auto sharded = ShardedStore::Open(bundle_path);
    SPECQP_CHECK(sharded.ok()) << sharded.status().ToString();
    bytes_mapped_bundle = sharded.value()->bytes_mapped();
    return sharded.value()->store().size();
  });
  const LoadTiming bundle_mmap_eager = Measure([&] {
    ShardedStore::Options sharded_eager;
    sharded_eager.verify = MmapStore::Verify::kEager;
    auto sharded = ShardedStore::Open(bundle_path, sharded_eager);
    SPECQP_CHECK(sharded.ok()) << sharded.status().ToString();
    return sharded.value()->store().size();
  });

  // --- answer equivalence ----------------------------------------------------

  EngineOptions mmap_options = MakeEngineOptions();
  mmap_options.mmap = true;
  EngineOptions parse_options = MakeEngineOptions();
  parse_options.mmap = false;
  auto mapped_engine = Engine::OpenFromPath(v2_path, &no_rules, mmap_options);
  auto mapped_v3_engine =
      Engine::OpenFromPath(v3_path, &no_rules, mmap_options);
  auto sharded_engine =
      Engine::OpenFromPath(bundle_path, &no_rules, mmap_options);
  auto parsed_engine = Engine::OpenFromPath(v2_path, &no_rules, parse_options);
  SPECQP_CHECK(mapped_engine.ok() && mapped_v3_engine.ok() &&
               sharded_engine.ok() && parsed_engine.ok());
  SPECQP_CHECK(mapped_engine.value().mmap_backed());
  SPECQP_CHECK(mapped_v3_engine.value().mmap_backed());
  SPECQP_CHECK(sharded_engine.value().mmap_backed());
  const std::string query_text =
      "SELECT ?s WHERE { ?s <predicate/0> <object/0> . "
      "?s <predicate/1> <object/1> }";
  WallTimer first_query_timer;
  auto mapped_rows = RunTextQuery(*mapped_engine.value().engine, query_text,
                                  /*k=*/10, Strategy::kNoRelax);
  const double mmap_first_query_ms = first_query_timer.ElapsedMillis();
  first_query_timer.Reset();
  auto mapped_v3_rows = RunTextQuery(*mapped_v3_engine.value().engine,
                                     query_text, /*k=*/10, Strategy::kNoRelax);
  const double mmap_v3_first_query_ms = first_query_timer.ElapsedMillis();
  first_query_timer.Reset();
  auto sharded_rows = RunTextQuery(*sharded_engine.value().engine, query_text,
                                   /*k=*/10, Strategy::kNoRelax);
  const double bundle_first_query_ms = first_query_timer.ElapsedMillis();
  auto parsed_rows = RunTextQuery(*parsed_engine.value().engine, query_text,
                                  /*k=*/10, Strategy::kNoRelax);
  SPECQP_CHECK(mapped_rows.ok() && mapped_v3_rows.ok() && sharded_rows.ok() &&
               parsed_rows.ok());
  auto rows_match = [](const Engine::QueryResult& a,
                       const Engine::QueryResult& b) {
    if (a.rows.size() != b.rows.size()) return false;
    for (size_t i = 0; i < a.rows.size(); ++i) {
      if (a.rows[i].bindings != b.rows[i].bindings ||
          a.rows[i].score != b.rows[i].score) {
        return false;
      }
    }
    return true;
  };
  const bool answers_match =
      rows_match(mapped_rows.value(), parsed_rows.value()) &&
      rows_match(mapped_v3_rows.value(), parsed_rows.value()) &&
      rows_match(sharded_rows.value(), parsed_rows.value());
  SPECQP_CHECK(answers_match) << "mmap and parsed engines disagree";

  // --- report ----------------------------------------------------------------

  const std::vector<int> widths = {34, 12, 12};
  PrintRow({"variant", "cold ms", "warm ms"}, widths);
  PrintRule(widths);
  struct RowSpec {
    const char* name;
    const LoadTiming* timing;
  };
  const std::string bundle_lazy_name =
      StrFormat("bundle open, %zu shards (lazy CRC)", shard_count);
  const std::string bundle_eager_name =
      StrFormat("bundle open, %zu shards (eager CRC)", shard_count);
  const RowSpec rows[] = {
      {"v1 LoadStore (parse + index)", &v1_parse},
      {"v2 LoadStore (parse + index)", &v2_parse},
      {"v2 mmap open (lazy CRC)", &v2_mmap},
      {"v3 mmap open (lazy CRC)", &v3_mmap},
      {"v2 mmap open (eager CRC)", &v2_mmap_eager},
      {"v3 mmap open (eager CRC)", &v3_mmap_eager},
      {bundle_lazy_name.c_str(), &bundle_mmap},
      {bundle_eager_name.c_str(), &bundle_mmap_eager},
  };
  for (const RowSpec& row : rows) {
    PrintRow({row.name, StrFormat("%.3f", row.timing->cold_ms),
              StrFormat("%.3f", row.timing->warm_ms)},
             widths);
  }
  const double speedup_cold = v1_parse.cold_ms / v2_mmap.cold_ms;
  const double speedup_warm = v1_parse.warm_ms / v2_mmap.warm_ms;
  const double v3_reduction =
      bytes_mapped_v2 == 0
          ? 0.0
          : 1.0 - static_cast<double>(bytes_mapped_v3) /
                      static_cast<double>(bytes_mapped_v2);
  std::printf(
      "\nmmap speedup vs v1: %.1fx cold, %.1fx warm; bytes mapped "
      "v2=%zu v3=%zu (v3 %.1f%% smaller); first mapped query "
      "v2 %.3f ms, v3 %.3f ms; answers match: %s\n",
      speedup_cold, speedup_warm, bytes_mapped_v2, bytes_mapped_v3,
      100.0 * v3_reduction, mmap_first_query_ms, mmap_v3_first_query_ms,
      answers_match ? "yes" : "no");
  std::printf(
      "%zu-shard bundle: %.3f ms warm open (%.1fx the v3 single file, "
      "merge included), %zu bytes mapped, first query %.3f ms\n",
      shard_count, bundle_mmap.warm_ms,
      v3_mmap.warm_ms > 0.0 ? bundle_mmap.warm_ms / v3_mmap.warm_ms : 0.0,
      bytes_mapped_bundle, bundle_first_query_ms);

  Json& config = out.Set("config", Json::Object());
  config.Set("triples", g_expected_triples);
  config.Set("terms",
             (kNumSubjects + kNumObjects) * scale + kNumPredicates);
  config.Set("repeats", kRepeats);
  config.Set("file_bytes_v1", static_cast<uint64_t>(v1_bytes));
  config.Set("file_bytes_v2", static_cast<uint64_t>(v2_bytes));
  config.Set("file_bytes_v3", static_cast<uint64_t>(v3_bytes));
  config.Set("save_v1_ms", save_v1_ms);
  config.Set("save_v2_ms", save_v2_ms);
  config.Set("save_v3_ms", save_v3_ms);
  config.Set("save_bundle_ms", save_bundle_ms);
  config.Set("bundle_shards", shard_count);

  Json& loads = out.Set("loads", Json::Array());
  const struct {
    const char* name;
    const LoadTiming* timing;
    uint64_t mapped;
  } specs[] = {
      {"v1_parse", &v1_parse, 0},
      {"v2_parse", &v2_parse, 0},
      {"v2_mmap_lazy", &v2_mmap, bytes_mapped_v2},
      {"v3_mmap_lazy", &v3_mmap, bytes_mapped_v3},
      {"v2_mmap_eager", &v2_mmap_eager, bytes_mapped_v2},
      {"v3_mmap_eager", &v3_mmap_eager, bytes_mapped_v3},
      {"bundle_mmap_lazy", &bundle_mmap, bytes_mapped_bundle},
      {"bundle_mmap_eager", &bundle_mmap_eager, bytes_mapped_bundle},
  };
  for (const auto& spec : specs) {
    Json& j = loads.Push(Json::Object());
    j.Set("name", spec.name);
    j.Set("load_ms", spec.timing->cold_ms);
    j.Set("load_ms_warm", spec.timing->warm_ms);
    j.Set("bytes_mapped", spec.mapped);
  }
  out.Set("speedup_cold_vs_v1", speedup_cold);
  out.Set("speedup_warm_vs_v1", speedup_warm);
  out.Set("bytes_mapped_reduction_v3_vs_v2", v3_reduction);
  out.Set("mmap_first_query_ms", mmap_first_query_ms);
  out.Set("mmap_v3_first_query_ms", mmap_v3_first_query_ms);
  out.Set("bundle_first_query_ms", bundle_first_query_ms);
  out.Set("answers_match", answers_match);

  // Per-shard scatter-gather ledger of the bundle engine after its query:
  // static shape plus the gather counters, folded into the artifact so the
  // perf trajectory sees per-shard balance.
  SPECQP_CHECK(sharded_engine.value().sharded != nullptr);
  Json& shards_json = out.Set("shards", Json::Array());
  for (const auto& c : sharded_engine.value().sharded->Counters()) {
    Json& j = shards_json.Push(Json::Object());
    j.Set("shard_id", c.shard_id);
    j.Set("triple_count", c.triple_count);
    j.Set("bytes_mapped", c.bytes_mapped);
    j.Set("triples_gathered", c.triples_gathered);
    j.Set("patterns_scattered", c.patterns_scattered);
  }

  // --- fault scenarios -------------------------------------------------------
  // Deliberate injected-failure measurements, fenced under a
  // "fault_scenarios" object the comparison gate exempts from its
  // no-fault-artifact rule: what an open-time transient costs once the
  // retry loop recovers it, and what serving costs with 1 of N shards
  // permanently down (degraded open + first query over the survivors).

  Json& fault_json = out.Set("fault_scenarios", Json::Object());
  {
    // Shard 0 fails twice at open and recovers on the third attempt —
    // the open pays two backoffs on top of the clean bundle open.
    const char* retry_plan = "seed=11;shard.open.0=1@2";
    ShardedStore::Options retry_options;
    retry_options.allow_quarantine = true;
    retry_options.open_retry.initial_backoff = std::chrono::microseconds(200);
    retry_options.open_retry.max_backoff = std::chrono::microseconds(2000);
    double retry_open_ms = 0.0;
    {
      ScopedFaultPlan plan(retry_plan);
      WallTimer timer;
      auto sharded = ShardedStore::Open(bundle_path, retry_options);
      retry_open_ms = timer.ElapsedMillis();
      SPECQP_CHECK(sharded.ok()) << sharded.status().ToString();
      SPECQP_CHECK(sharded.value()->ShardsFailed() == 0)
          << "open retry did not recover the transient";
    }
    Json& retry_json = fault_json.Set("open_retry", Json::Object());
    retry_json.Set("fault_plan", retry_plan);
    retry_json.Set("open_ms", retry_open_ms);
    retry_json.Set("clean_open_ms_warm", bundle_mmap.warm_ms);
    std::printf(
        "fault scenario: transient shard-open fault (2 fires) recovered in "
        "%.3f ms open (clean warm open %.3f ms)\n",
        retry_open_ms, bundle_mmap.warm_ms);
  }
  {
    // Shard 0 permanently down: degraded open quarantines it, the first
    // query answers from the surviving shards with the ledger set.
    const char* degraded_plan = "seed=11;shard.open.0=1";
    EngineOptions degraded_options = MakeEngineOptions();
    degraded_options.mmap = true;
    degraded_options.degraded_reads = true;
    double degraded_open_ms = 0.0;
    double degraded_first_query_ms = 0.0;
    uint64_t shards_failed = 0;
    uint64_t shards_total = 0;
    {
      ScopedFaultPlan plan(degraded_plan);
      WallTimer timer;
      auto degraded_engine =
          Engine::OpenFromPath(bundle_path, &no_rules, degraded_options);
      degraded_open_ms = timer.ElapsedMillis();
      SPECQP_CHECK(degraded_engine.ok())
          << degraded_engine.status().ToString();
      FaultInjector::Global().Disarm();
      WallTimer query_timer;
      auto degraded_rows = RunTextQuery(*degraded_engine.value().engine,
                                        query_text, /*k=*/10,
                                        Strategy::kNoRelax);
      degraded_first_query_ms = query_timer.ElapsedMillis();
      SPECQP_CHECK(degraded_rows.ok()) << degraded_rows.status().ToString();
      shards_failed = degraded_rows.value().stats.shards_failed;
      shards_total = degraded_rows.value().stats.shards_total;
      SPECQP_CHECK(shards_failed == 1) << "expected exactly 1 shard down";
    }
    Json& degraded_json = fault_json.Set("degraded", Json::Object());
    degraded_json.Set("fault_plan", degraded_plan);
    degraded_json.Set("open_ms", degraded_open_ms);
    degraded_json.Set("first_query_ms", degraded_first_query_ms);
    degraded_json.Set("clean_first_query_ms", bundle_first_query_ms);
    degraded_json.Set("shards_failed", shards_failed);
    degraded_json.Set("shards_total", shards_total);
    std::printf(
        "fault scenario: %llu of %llu shards down -> degraded open %.3f ms, "
        "first degraded query %.3f ms (clean %.3f ms)\n",
        static_cast<unsigned long long>(shards_failed),
        static_cast<unsigned long long>(shards_total), degraded_open_ms,
        degraded_first_query_ms, bundle_first_query_ms);
  }

  std::error_code ignored;
  fs::remove_all(dir, ignored);
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "micro_store_load",
                                  &specqp::bench::Run);
}
