#ifndef SPECQP_BENCH_JSON_WRITER_H_
#define SPECQP_BENCH_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace specqp::bench {

// Minimal ordered JSON value, sufficient for the benchmark artifacts: no
// parsing, no external dependency, object keys kept in insertion order so
// artifacts diff cleanly across runs. Integers round-trip exactly (they
// are serialised as integers, not doubles); non-finite doubles serialise
// as null, per RFC 8259 which has no representation for them.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool v) : type_(Type::kBool), bool_(v) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(long v) : type_(Type::kInt), int_(v) {}
  Json(long long v) : type_(Type::kInt), int_(v) {}
  Json(unsigned v) : type_(Type::kUint), uint_(v) {}
  Json(unsigned long v) : type_(Type::kUint), uint_(v) {}
  Json(unsigned long long v) : type_(Type::kUint), uint_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* v) : type_(Type::kString), string_(v) {}
  Json(std::string v) : type_(Type::kString), string_(std::move(v)) {}
  Json(std::string_view v) : type_(Type::kString), string_(v) {}

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }

  // Array append; the value must be an array. Returns a reference to the
  // stored element so nested structures can be built in place.
  //
  // CAUTION: the reference lives in an internal std::vector — the next
  // Push/Set on the SAME container may reallocate and invalidate it.
  // Finish building one element (or dereference anew) before appending
  // the next; never hold a child reference across a sibling insertion.
  Json& Push(Json v);

  // Object insert (append; duplicate keys are the caller's bug and are
  // kept as-is). The value must be an object. Same reference-invalidation
  // caveat as Push.
  Json& Set(std::string key, Json v);

  // Serialises with two-space indentation and a trailing newline.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

// Writes `doc.Dump()` to `path` atomically enough for bench artifacts
// (truncate + write). Returns false and fills `error` on I/O failure.
bool WriteJsonFile(const std::string& path, const Json& doc,
                   std::string* error);

}  // namespace specqp::bench

#endif  // SPECQP_BENCH_JSON_WRITER_H_
