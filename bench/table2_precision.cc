// Reproduces Table 2: precision (== recall) of Spec-QP's top-k against the
// true top-k, for k in {10, 15, 20}, on XKG and Twitter.
//
// Paper values: XKG 0.70 / 0.88 / 0.91, Twitter 0.72 / 0.78 / 0.80.
// Expected shape: precision >= ~0.7 everywhere and increasing with k.

#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/string_util.h"

namespace specqp::bench {
namespace {

std::map<size_t, double> MeanPrecisionByK(
    const std::vector<QueryEvaluation>& evals) {
  std::map<size_t, double> result;
  for (size_t k : kTopKs) {
    Aggregate agg;
    for (const QueryEvaluation& eval : evals) {
      agg.Add(eval.by_k.at(k).precision);
    }
    result[k] = agg.Mean();
  }
  return result;
}

Json DatasetJson(const char* name,
                 const std::vector<QueryEvaluation>& evals,
                 const std::map<size_t, double>& mean_precision,
                 const std::map<size_t, const char*>& paper) {
  Json d = Json::Object();
  d.Set("dataset", name);
  Json& queries = d.Set("queries", Json::Array());
  for (size_t i = 0; i < evals.size(); ++i) {
    Json& q = queries.Push(Json::Object());
    q.Set("query_index", i);
    q.Set("num_patterns", evals[i].query->num_patterns());
    Json& by_k = q.Set("by_k", Json::Array());
    for (size_t k : kTopKs) {
      Json& e = by_k.Push(QualityMetricsToJson(evals[i].by_k.at(k)));
      e.Set("k", k);
    }
  }
  Json& means = d.Set("mean_precision_by_k", Json::Array());
  for (size_t k : kTopKs) {
    Json& row = means.Push(Json::Object());
    row.Set("k", k);
    row.Set("precision", mean_precision.at(k));
    row.Set("paper", paper.at(k));
  }
  return d;
}

void Run(Json& out) {
  PrintTitle("Table 2: Precision (and Recall) over each dataset");

  const XkgBundle& xkg = GetXkg();
  Engine xkg_engine(&xkg.data.store, &xkg.data.rules, MakeEngineOptions());
  ExhaustiveEvaluator xkg_oracle(&xkg.data.store, &xkg.data.rules);
  const auto xkg_evals =
      EvaluateWorkloadQuality(xkg_engine, xkg_oracle, xkg.workload);
  const auto xkg_precision = MeanPrecisionByK(xkg_evals);

  const TwitterBundle& twitter = GetTwitter();
  Engine tw_engine(&twitter.data.store, &twitter.data.rules, MakeEngineOptions());
  ExhaustiveEvaluator tw_oracle(&twitter.data.store, &twitter.data.rules);
  const auto tw_evals =
      EvaluateWorkloadQuality(tw_engine, tw_oracle, twitter.workload);
  const auto tw_precision = MeanPrecisionByK(tw_evals);

  const std::map<size_t, const char*> paper_xkg = {
      {10, "0.70"}, {15, "0.88"}, {20, "0.91"}};
  const std::map<size_t, const char*> paper_twitter = {
      {10, "0.72"}, {15, "0.78"}, {20, "0.80"}};

  Json& datasets = out.Set("datasets", Json::Array());
  datasets.Push(DatasetJson("xkg", xkg_evals, xkg_precision, paper_xkg));
  datasets.Push(
      DatasetJson("twitter", tw_evals, tw_precision, paper_twitter));

  const std::vector<int> widths = {6, 26, 26};
  PrintRow({"k", "XKG", "Twitter"}, widths);
  PrintRule(widths);
  for (size_t k : kTopKs) {
    PrintRow({StrFormat("%zu", k),
              WithPaper(xkg_precision.at(k), paper_xkg.at(k)),
              WithPaper(tw_precision.at(k), paper_twitter.at(k))},
             widths);
  }

  std::printf(
      "\nShape check: precision should be >= ~0.7 and increase with k.\n");
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "table2_precision",
                                  &specqp::bench::Run);
}
