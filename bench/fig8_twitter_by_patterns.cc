// Reproduces Figure 8: runtimes and memory of TriniT (T) vs Spec-QP (S)
// over the Twitter workload, grouped by the number of triple patterns in
// the query (2, 3), for k in {10, 15, 20}.
//
// Paper shape: S consistently at or below T; the margin shrinks as k grows
// because the sparse original tag conjunctions increasingly need their
// relaxations.

#include "bench_common.h"

int main() {
  using namespace specqp;
  using namespace specqp::bench;
  const TwitterBundle& twitter = GetTwitter();
  Engine engine(&twitter.data.store, &twitter.data.rules);
  RunEfficiencyFigure(
      "Figure 8: Twitter runtimes & memory, T vs S, by #triple patterns",
      engine, twitter.workload, GroupBy::kNumPatterns);
  return 0;
}
