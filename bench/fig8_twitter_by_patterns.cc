// Reproduces Figure 8: runtimes and memory of TriniT (T) vs Spec-QP (S)
// over the Twitter workload, grouped by the number of triple patterns in
// the query (2, 3), for k in {10, 15, 20}.
//
// Paper shape: S consistently at or below T; the margin shrinks as k grows
// because the sparse original tag conjunctions increasingly need their
// relaxations.

#include "bench_common.h"

namespace specqp::bench {
namespace {

void Run(Json& out) {
  const TwitterBundle& twitter = GetTwitter();
  out.Set("dataset", "twitter");
  out.Set("num_triples", twitter.data.store.size());
  out.Set("num_queries", twitter.workload.size());
  Engine engine(&twitter.data.store, &twitter.data.rules, MakeEngineOptions());
  RunEfficiencyFigure(
      "Figure 8: Twitter runtimes & memory, T vs S, by #triple patterns",
      engine, twitter.workload, GroupBy::kNumPatterns, out);
}

}  // namespace
}  // namespace specqp::bench

int main(int argc, char** argv) {
  return specqp::bench::BenchMain(argc, argv, "fig8_twitter_by_patterns",
                                  &specqp::bench::Run);
}
