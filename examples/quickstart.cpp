// Quickstart: build a scored knowledge graph, declare weighted relaxation
// rules, and run a top-k SPARQL query under the Spec-QP speculative planner.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "query/parser.h"
#include "core/exhaustive.h"
#include "rdf/triple_store.h"
#include "relax/relaxation_index.h"
#include "topk/scored_row.h"
#include "util/logging.h"

using namespace specqp;

int main() {
  // 1. Load triples. Scores are KG-level popularity/confidence values
  //    (here: artist popularity).
  TripleStore store;
  store.Add("shakira", "rdf:type", "singer", 100);
  store.Add("beyonce", "rdf:type", "singer", 90);
  store.Add("adele", "rdf:type", "singer", 85);
  store.Add("sting", "rdf:type", "vocalist", 80);
  store.Add("shakira", "rdf:type", "vocalist", 100);
  store.Add("norah", "rdf:type", "vocalist", 55);
  store.Add("sting", "rdf:type", "lyricist", 80);
  store.Add("bob", "rdf:type", "lyricist", 60);
  store.Add("shakira", "rdf:type", "writer", 100);
  store.Add("sting", "rdf:type", "writer", 80);
  store.Add("taylor", "rdf:type", "writer", 65);
  store.Finalize();

  // 2. Declare weighted relaxation rules (normally mined from the KG; see
  //    relax/miner.h). <singer> may be relaxed to <vocalist> at weight 0.9,
  //    <lyricist> to <writer> at 0.8.
  RelaxationIndex rules;
  const TermId type = store.MustId("rdf:type");
  SPECQP_CHECK(rules
                   .AddRule({PatternKey{kInvalidTermId, type,
                                        store.MustId("singer")},
                             PatternKey{kInvalidTermId, type,
                                        store.MustId("vocalist")},
                             0.9})
                   .ok());
  SPECQP_CHECK(rules
                   .AddRule({PatternKey{kInvalidTermId, type,
                                        store.MustId("lyricist")},
                             PatternKey{kInvalidTermId, type,
                                        store.MustId("writer")},
                             0.8})
                   .ok());

  // 3. Run a query through the request API. The engine plans
  //    speculatively: patterns whose relaxations cannot reach the top-k
  //    are executed as plain rank joins. Submit returns a future; windowed
  //    admission batches concurrent submissions, so a single quickstart
  //    query just rides a window of one.
  Engine engine(&store, &rules);
  const char* text =
      "SELECT ?s WHERE { ?s <rdf:type> <singer> . ?s <rdf:type> <lyricist> }";
  QueryResponse response =
      engine.Submit(QueryRequest::FromText(text, /*k=*/3)).get();
  if (!response.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 response.status.ToString().c_str());
    return 1;
  }

  std::printf("query : %s\n", text);
  std::printf("plan  : %s   (patterns left of '|' run without relaxations)\n",
              response.plan.ToString().c_str());
  std::printf("top-%zu:\n", response.rows.size());
  auto parsed = ParseQuery(text, store.dict());
  for (const ScoredRow& row : response.rows) {
    std::printf("  %s\n",
                RowToString(row, parsed.value(), store.dict()).c_str());
  }
  std::printf("cost  : %llu intermediate answer objects, %.3f ms "
              "(window of %zu, queued %.3f ms)\n",
              static_cast<unsigned long long>(response.stats.answer_objects),
              response.stats.plan_ms + response.stats.exec_ms,
              response.window_size, response.admission_ms);
  return 0;
}
