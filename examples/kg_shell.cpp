// Interactive shell over a Spec-QP knowledge graph: generate or load a
// store, type SPARQL-subset queries, inspect plans and relaxations.
//
//   $ ./build/examples/kg_shell            # generates a demo music KG
//   $ echo 'k 5
//     plan SELECT ?s WHERE { ?s <rdf:type> <singer> }
//     run SELECT ?s WHERE { ?s <rdf:type> <singer> }' | ./build/examples/kg_shell
//
// Commands:
//   run <query>        execute under Spec-QP and print the top-k
//   trinit <query>     execute under the TriniT baseline
//   submit <q1> ; <q2> submit several ';'-separated queries asynchronously
//                      (Engine::Submit): requests stream into the
//                      admission window, close on max-size/max-delay, and
//                      dispatch as one shared-scan batch; prints each
//                      top-k plus the admission ledger
//   batch <q1> ; <q2>  execute several ';'-separated queries as one
//                      pre-assembled batch (BatchExecutor) and print the
//                      batch's amortisation ledger
//   plan <query>       show PLANGEN's decision without executing
//   explain <query>    same via Engine::Explain (the request-API entry
//                      point; accepts "explain trinit <query>" etc.)
//   rules <term>       list relaxations for (?s <rdf:type> <term>) or any
//                      (?s <p> <o>) via "rules <p> <o>"
//   k <n>              set k (default 10)
//   save <prefix>      write <prefix>.store and <prefix>.rules
//   load <prefix>      load them back
//   stats              store, cache, and admission statistics
//   help / quit
//
// Load path: `save` writes the store in format v2 ("SQPSTOR2", see
// docs/FORMATS.md) with the engine's warmed statistics snapshot embedded;
// `load` goes through Engine::OpenFromPath, which memory-maps v2 files —
// a zero-copy open with no per-triple parsing — and parses legacy v1
// files. The statistics snapshot pre-seeds the new engine's catalog, so
// plans right after `load` match the session that saved the store.
// `stats` shows which backend (mapped or parsed) is serving.

#include <cctype>
#include <cstdio>
#include <future>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_executor.h"
#include "core/engine.h"
#include "query/parser.h"
#include "rdf/store_io.h"
#include "relax/miner.h"
#include "relax/rules_io.h"
#include "topk/scored_row.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

using namespace specqp;

namespace {

// The demo KG: the music example from the paper's introduction.
void BuildDemoKg(TripleStore* store, RelaxationIndex* rules) {
  Rng rng(7);
  const char* roles[] = {"singer",   "vocalist",  "jazz_singer", "artist",
                         "lyricist", "writer",    "guitarist",   "musician",
                         "pianist",  "percussionist"};
  for (int i = 0; i < 2000; ++i) {
    const std::string artist = "artist" + std::to_string(i);
    const double popularity = 1e4 / (i + 1.0);
    // Correlated role membership so mining finds Table-1-like rules.
    const bool sings = rng.NextBool(0.3);
    if (sings) {
      store->Add(artist, "rdf:type", "singer", popularity);
      if (rng.NextBool(0.9)) {
        store->Add(artist, "rdf:type", "vocalist", popularity);
      }
      if (rng.NextBool(0.15)) {
        store->Add(artist, "rdf:type", "jazz_singer", popularity);
      }
    }
    if (rng.NextBool(0.2)) {
      store->Add(artist, "rdf:type", "lyricist", popularity);
      if (rng.NextBool(0.85)) {
        store->Add(artist, "rdf:type", "writer", popularity);
      }
    }
    for (const char* instrument : {"guitarist", "pianist", "percussionist"}) {
      if (rng.NextBool(0.15)) {
        store->Add(artist, "rdf:type", instrument, popularity);
        if (rng.NextBool(0.9)) {
          store->Add(artist, "rdf:type", "musician", popularity);
        }
      }
    }
    if (rng.NextBool(0.5)) store->Add(artist, "rdf:type", "artist", popularity);
    (void)roles;
  }
  store->Finalize();
  MinerOptions miner;
  miner.min_support = 5;
  const Status status = MineObjectCooccurrence(
      *store, store->MustId("rdf:type"), miner, rules);
  SPECQP_CHECK(status.ok()) << status.ToString();
}

class Shell {
 public:
  Shell() {
    store_ = std::make_unique<TripleStore>();
    rules_ = std::make_unique<RelaxationIndex>();
    BuildDemoKg(store_.get(), rules_.get());
    RebuildEngine();
    std::printf("demo KG ready: %zu triples, %zu relaxation rules. Type "
                "'help' for commands.\n",
                store().size(), rules_->total_rules());
  }

  int Loop() {
    std::string line;
    while (true) {
      std::printf("specqp> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      if (!Dispatch(line)) break;
    }
    return 0;
  }

 private:
  // The active store/engine pair: the generated demo KG (store_/engine_)
  // until `load` replaces it with an Engine::Opened bundle that owns the
  // mapped or parsed file-backed store.
  const TripleStore& store() const {
    return opened_.has_value() ? opened_->store() : *store_;
  }
  Engine& engine() {
    return opened_.has_value() ? *opened_->engine : *engine_;
  }

  void RebuildEngine() {
    opened_.reset();
    engine_ = std::make_unique<Engine>(store_.get(), rules_.get());
  }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) return true;
    std::string rest;
    std::getline(in, rest);
    const std::string arg(StripWhitespace(rest));

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "commands: run <query> | trinit <query> | submit <q1> ; <q2> ... "
          "| batch <q1> ; <q2> ... | plan <query> | explain [trinit|"
          "norelax] <query> | rules <p> <o> | k <n> | save <prefix> | "
          "load <prefix> | stats | quit\n");
    } else if (cmd == "k") {
      const int value = std::atoi(arg.c_str());
      if (value >= 1) {
        k_ = static_cast<size_t>(value);
        std::printf("k = %zu\n", k_);
      } else {
        std::printf("usage: k <positive integer>\n");
      }
    } else if (cmd == "run" || cmd == "trinit") {
      Execute(arg, cmd == "run" ? Strategy::kSpecQp : Strategy::kTrinit);
    } else if (cmd == "submit") {
      SubmitCmd(arg);
    } else if (cmd == "batch") {
      ExecuteBatchCmd(arg);
    } else if (cmd == "plan" || cmd == "explain") {
      Plan(arg);
    } else if (cmd == "rules") {
      ShowRules(arg);
    } else if (cmd == "save") {
      Save(arg);
    } else if (cmd == "load") {
      Load(arg);
    } else if (cmd == "stats") {
      std::printf("store: %zu triples, %zu terms (%s); rules: %zu simple, "
                  "%zu chain; posting cache: %zu lists (%llu hits / %llu "
                  "misses); stats catalog: %zu patterns\n",
                  store().size(), store().dict().size(),
                  opened_.has_value() && opened_->mmap_backed()
                      ? "mmap-backed"
                      : "in-memory",
                  rules_->total_rules(), rules_->total_chain_rules(),
                  engine().postings().size(),
                  static_cast<unsigned long long>(engine().postings().hits()),
                  static_cast<unsigned long long>(
                      engine().postings().misses()),
                  engine().catalog().size());
      const AdmissionController::Stats admission =
          engine().admission().stats();
      std::printf("admission: %llu submitted, %llu windows dispatched "
                  "(max %zu), %llu cancelled, %llu deadline-exceeded\n",
                  static_cast<unsigned long long>(admission.submitted),
                  static_cast<unsigned long long>(
                      admission.windows_dispatched),
                  admission.max_window_size,
                  static_cast<unsigned long long>(admission.cancelled),
                  static_cast<unsigned long long>(
                      admission.deadline_exceeded));
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

  void Execute(const std::string& text, Strategy strategy) {
    auto parsed = ParseQuery(text, store().dict());
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.status().ToString().c_str());
      return;
    }
    // Immediate admission: the shell is a single synchronous caller, so
    // there is nothing to batch with.
    QueryRequest request =
        QueryRequest::FromQuery(parsed.value(), k_, strategy);
    request.admission = QueryRequest::Admission::kImmediate;
    const QueryResponse response = engine().Submit(std::move(request)).get();
    if (!response.ok()) {
      std::printf("%s\n", response.status.ToString().c_str());
      return;
    }
    std::printf("[%s] plan %s — %.3f ms, %llu answer objects\n",
                std::string(StrategyName(strategy)).c_str(),
                response.plan.ToString().c_str(),
                response.stats.plan_ms + response.stats.exec_ms,
                static_cast<unsigned long long>(
                    response.stats.answer_objects));
    for (size_t i = 0; i < response.rows.size(); ++i) {
      std::printf("  #%-3zu %s\n", i + 1,
                  RowToString(response.rows[i], parsed.value(),
                              store().dict())
                      .c_str());
    }
    if (response.rows.empty()) std::printf("  (no answers)\n");
  }

  // "submit <q1> ; <q2> ; ..." — the asynchronous serving path: every
  // query becomes one Engine::Submit, the admission layer forms windows
  // (max-size / max-delay), and the futures are collected afterwards.
  void SubmitCmd(const std::string& arg) {
    const std::vector<std::string> texts = SplitQueries(arg);
    if (texts.empty()) {
      std::printf("usage: submit <query> ; <query> ; ...\n");
      return;
    }
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(texts.size());
    for (const std::string& text : texts) {
      QueryRequest request = QueryRequest::FromText(text, k_);
      request.tag = text;
      futures.push_back(engine().Submit(std::move(request)));
    }
    // Close any window still waiting on max-delay so the demo returns
    // promptly.
    engine().admission().Flush();
    for (size_t q = 0; q < futures.size(); ++q) {
      QueryResponse response = futures[q].get();
      std::printf("[submit %zu/%zu] %s\n", q + 1, futures.size(),
                  response.tag.c_str());
      if (!response.ok()) {
        std::printf("  %s\n", response.status.ToString().c_str());
        continue;
      }
      auto parsed = ParseQuery(response.tag, store().dict());
      for (size_t i = 0; i < response.rows.size(); ++i) {
        std::printf("  #%-3zu %s\n", i + 1,
                    RowToString(response.rows[i], parsed.value(),
                                store().dict())
                        .c_str());
      }
      if (response.rows.empty()) std::printf("  (no answers)\n");
      std::printf("  window of %zu, queued %.3f ms\n", response.window_size,
                  response.admission_ms);
    }
    const AdmissionController::Stats stats = engine().admission().stats();
    std::printf(
        "admission: %llu submitted, %llu windows (%llu on size, %llu on "
        "delay, %llu on flush), max window %zu, %llu shared-scan hits\n",
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.windows_dispatched),
        static_cast<unsigned long long>(stats.closed_on_size),
        static_cast<unsigned long long>(stats.closed_on_delay),
        static_cast<unsigned long long>(stats.closed_on_flush),
        stats.max_window_size,
        static_cast<unsigned long long>(stats.shared_scan_hits));
  }

  static std::vector<std::string> SplitQueries(const std::string& arg) {
    std::vector<std::string> texts;
    size_t start = 0;
    while (start <= arg.size()) {
      const size_t split = arg.find(';', start);
      const std::string piece(StripWhitespace(
          arg.substr(start, split == std::string::npos ? std::string::npos
                                                       : split - start)));
      if (!piece.empty()) texts.push_back(piece);
      if (split == std::string::npos) break;
      start = split + 1;
    }
    return texts;
  }

  void ExecuteBatchCmd(const std::string& arg) {
    const std::vector<std::string> texts = SplitQueries(arg);
    if (texts.empty()) {
      std::printf("usage: batch <query> ; <query> ; ...\n");
      return;
    }
    // Parse once up front: the parsed queries drive both the batch (so
    // execution and row printing agree on one Query object) and the
    // per-slot error reporting.
    std::vector<Result<Query>> parsed;
    std::vector<Query> good;
    parsed.reserve(texts.size());
    for (const std::string& text : texts) {
      parsed.push_back(ParseQuery(text, store().dict()));
      if (parsed.back().ok()) good.push_back(parsed.back().value());
    }
    BatchStats bs;
    BatchExecutor batch(&engine());
    const auto results = batch.Execute(good, k_, Strategy::kSpecQp, &bs);
    size_t next_good = 0;
    for (size_t q = 0; q < texts.size(); ++q) {
      std::printf("[batch %zu/%zu] %s\n", q + 1, texts.size(),
                  texts[q].c_str());
      if (!parsed[q].ok()) {
        std::printf("  %s\n", parsed[q].status().ToString().c_str());
        continue;
      }
      const auto& result = results[next_good++];
      for (size_t i = 0; i < result.rows.size(); ++i) {
        std::printf("  #%-3zu %s\n", i + 1,
                    RowToString(result.rows[i], parsed[q].value(),
                                store().dict())
                        .c_str());
      }
      if (result.rows.empty()) std::printf("  (no answers)\n");
    }
    std::printf(
        "batch: %zu queries, %zu executed (%zu distinct patterns); %llu "
        "lists resolved once (%llu derived, %llu base scans), %llu shared "
        "hits; prepare %.3f ms, plan %.3f ms, exec %.3f ms\n",
        bs.batch_size, bs.distinct_queries, bs.distinct_patterns,
        static_cast<unsigned long long>(bs.lists_resolved),
        static_cast<unsigned long long>(bs.lists_derived),
        static_cast<unsigned long long>(bs.base_scans),
        static_cast<unsigned long long>(bs.shared_scan_hits), bs.prepare_ms,
        bs.plan_ms, bs.exec_ms);
  }

  // "plan <query>" / "explain [trinit|norelax] <query>": Engine::Explain,
  // the request-API plan introspection (PLANGEN diagnostics for Spec-QP,
  // the static plan shape for the baselines).
  void Plan(const std::string& arg) {
    Strategy strategy = Strategy::kSpecQp;
    std::string text = arg;
    for (const auto& [word, s] :
         {std::pair<const char*, Strategy>{"trinit", Strategy::kTrinit},
          std::pair<const char*, Strategy>{"norelax", Strategy::kNoRelax}}) {
      const size_t len = std::string(word).size();
      if (text.rfind(word, 0) == 0 && text.size() > len &&
          std::isspace(static_cast<unsigned char>(text[len]))) {
        strategy = s;
        text = std::string(StripWhitespace(text.substr(len)));
        break;
      }
    }
    const QueryResponse response =
        engine().Explain(QueryRequest::FromText(text, k_, strategy));
    if (!response.ok()) {
      std::printf("%s\n", response.status.ToString().c_str());
      return;
    }
    if (strategy == Strategy::kSpecQp) {
      // PLANGEN diagnostics only exist for the speculative strategy; the
      // baselines get a static plan shape.
      std::printf("[%s] plan %s   (E_Q(k=%zu) = %s, est. %0.f answers)\n",
                  std::string(StrategyName(strategy)).c_str(),
                  response.plan.ToString().c_str(), k_,
                  DoubleToString(response.diagnostics.eq_k, 3).c_str(),
                  response.diagnostics.cardinality_estimate);
    } else {
      std::printf("[%s] plan %s   (static plan, no PLANGEN diagnostics)\n",
                  std::string(StrategyName(strategy)).c_str(),
                  response.plan.ToString().c_str());
    }
    for (const PatternDecision& d : response.diagnostics.decisions) {
      std::printf("  q%zu: %s E_Q'(1)=%s -> %s", d.pattern_index,
                  d.has_relaxations ? "has relaxations," : "no relaxations,",
                  DoubleToString(d.eq_prime_top, 3).c_str(),
                  d.relax ? "RELAX" : "join group");
      if (d.has_relaxations) {
        std::printf("   (confidence %s%s)",
                    DoubleToString(d.confidence, 3).c_str(),
                    d.bucket_disagreement ? ", below bucket resolution" : "");
      }
      std::printf("\n");
    }
    // Speculation preview: the plan-level confidence is the least
    // confident contested decision; an engine with speculate_threshold
    // above it would race the runner-up (that decision flipped).
    const PlanDiagnostics& diag = response.diagnostics;
    if (strategy == Strategy::kSpecQp && diag.has_runner_up) {
      std::printf(
          "  plan confidence %s (least confident: q%d); race candidates:\n"
          "    primary   %s   est. cost %s\n"
          "    runner-up %s   est. cost %s\n",
          DoubleToString(diag.plan_confidence, 3).c_str(),
          diag.least_confident_pattern, response.plan.ToString().c_str(),
          DoubleToString(diag.primary_cost_estimate, 0).c_str(),
          diag.runner_up.ToString().c_str(),
          DoubleToString(diag.runner_up_cost_estimate, 0).c_str());
    }
  }

  void ShowRules(const std::string& arg) {
    std::istringstream in(arg);
    std::string p;
    std::string o;
    in >> p >> o;
    if (o.empty()) {
      o = p;
      p = "rdf:type";
    }
    auto pid = store().dict().Find(p);
    auto oid = store().dict().Find(o);
    if (!pid.ok() || !oid.ok()) {
      std::printf("unknown term(s)\n");
      return;
    }
    const PatternKey key{kInvalidTermId, pid.value(), oid.value()};
    const auto rules = rules_->RulesFor(key);
    if (rules.empty()) std::printf("  (no rules)\n");
    for (const RelaxationRule& rule : rules) {
      std::printf("  %s\n", RuleToString(rule, store().dict()).c_str());
    }
    for (const ChainRelaxationRule& rule : rules_->ChainRulesFor(key)) {
      std::printf("  %s\n", ChainRuleToString(rule, store().dict()).c_str());
    }
  }

  void Save(const std::string& prefix) {
    if (prefix.empty()) {
      std::printf("usage: save <prefix>\n");
      return;
    }
    // v2 store file with whatever statistics this session has warmed —
    // the next `load` starts with the same catalog without recomputing.
    SaveStoreOptions options;
    options.stats = engine().catalog().Snapshot();
    options.stats_head_fraction = engine().catalog().head_fraction();
    Status s = SaveStore(store(), prefix + ".store", options);
    if (s.ok()) s = SaveRules(*rules_, prefix + ".rules");
    std::printf("%s\n", s.ok() ? "saved" : s.ToString().c_str());
  }

  void Load(const std::string& prefix) {
    if (prefix.empty()) {
      std::printf("usage: load <prefix>\n");
      return;
    }
    auto rules = LoadRules(prefix + ".rules");
    if (!rules.ok()) {
      std::printf("%s\n", rules.status().ToString().c_str());
      return;
    }
    // Swap the rules in first (the engine keeps a pointer to them), then
    // open the store: mmap fast path for v2 files, parse for v1. Shell
    // users load arbitrary files, so pay for the full verification pass
    // (checksums + invariants on every section) instead of trusting the
    // bulk bytes.
    auto swapped = std::make_unique<RelaxationIndex>(std::move(rules).value());
    EngineOptions options;
    options.mmap_verify_all = true;
    auto opened = Engine::OpenFromPath(prefix + ".store", swapped.get(),
                                       options);
    if (!opened.ok()) {
      std::printf("%s\n", opened.status().ToString().c_str());
      return;
    }
    rules_ = std::move(swapped);
    opened_ = std::move(opened).value();
    engine_.reset();
    store_.reset();
    std::printf("loaded: %zu triples, %zu rules (%s, %zu stats patterns "
                "preloaded)\n",
                store().size(), rules_->total_rules(),
                opened_->mmap_backed() ? "mmap-backed" : "parsed",
                engine().catalog().size());
  }

  std::unique_ptr<TripleStore> store_;    // demo KG (generated)
  std::unique_ptr<RelaxationIndex> rules_;
  std::unique_ptr<Engine> engine_;        // engine over the demo KG
  std::optional<Engine::Opened> opened_;  // file-backed store + engine
  size_t k_ = 10;
};

}  // namespace

int main() {
  Shell shell;
  return shell.Loop();
}
