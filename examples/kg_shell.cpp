// Interactive shell over a Spec-QP knowledge graph: generate or load a
// store, type SPARQL-subset queries, inspect plans and relaxations.
//
//   $ ./build/examples/kg_shell            # generates a demo music KG
//   $ echo 'k 5
//     plan SELECT ?s WHERE { ?s <rdf:type> <singer> }
//     run SELECT ?s WHERE { ?s <rdf:type> <singer> }' | ./build/examples/kg_shell
//
// Commands:
//   run <query>        execute under Spec-QP and print the top-k
//   trinit <query>     execute under the TriniT baseline
//   plan <query>       show PLANGEN's decision without executing
//   rules <term>       list relaxations for (?s <rdf:type> <term>) or any
//                      (?s <p> <o>) via "rules <p> <o>"
//   k <n>              set k (default 10)
//   save <prefix>      write <prefix>.store and <prefix>.rules
//   load <prefix>      load them back
//   stats              store and cache statistics
//   help / quit

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "query/parser.h"
#include "rdf/store_io.h"
#include "relax/miner.h"
#include "relax/rules_io.h"
#include "topk/scored_row.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

using namespace specqp;

namespace {

// The demo KG: the music example from the paper's introduction.
void BuildDemoKg(TripleStore* store, RelaxationIndex* rules) {
  Rng rng(7);
  const char* roles[] = {"singer",   "vocalist",  "jazz_singer", "artist",
                         "lyricist", "writer",    "guitarist",   "musician",
                         "pianist",  "percussionist"};
  for (int i = 0; i < 2000; ++i) {
    const std::string artist = "artist" + std::to_string(i);
    const double popularity = 1e4 / (i + 1.0);
    // Correlated role membership so mining finds Table-1-like rules.
    const bool sings = rng.NextBool(0.3);
    if (sings) {
      store->Add(artist, "rdf:type", "singer", popularity);
      if (rng.NextBool(0.9)) {
        store->Add(artist, "rdf:type", "vocalist", popularity);
      }
      if (rng.NextBool(0.15)) {
        store->Add(artist, "rdf:type", "jazz_singer", popularity);
      }
    }
    if (rng.NextBool(0.2)) {
      store->Add(artist, "rdf:type", "lyricist", popularity);
      if (rng.NextBool(0.85)) {
        store->Add(artist, "rdf:type", "writer", popularity);
      }
    }
    for (const char* instrument : {"guitarist", "pianist", "percussionist"}) {
      if (rng.NextBool(0.15)) {
        store->Add(artist, "rdf:type", instrument, popularity);
        if (rng.NextBool(0.9)) {
          store->Add(artist, "rdf:type", "musician", popularity);
        }
      }
    }
    if (rng.NextBool(0.5)) store->Add(artist, "rdf:type", "artist", popularity);
    (void)roles;
  }
  store->Finalize();
  MinerOptions miner;
  miner.min_support = 5;
  const Status status = MineObjectCooccurrence(
      *store, store->MustId("rdf:type"), miner, rules);
  SPECQP_CHECK(status.ok()) << status.ToString();
}

class Shell {
 public:
  Shell() {
    store_ = std::make_unique<TripleStore>();
    rules_ = std::make_unique<RelaxationIndex>();
    BuildDemoKg(store_.get(), rules_.get());
    RebuildEngine();
    std::printf("demo KG ready: %zu triples, %zu relaxation rules. Type "
                "'help' for commands.\n",
                store_->size(), rules_->total_rules());
  }

  int Loop() {
    std::string line;
    while (true) {
      std::printf("specqp> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      if (!Dispatch(line)) break;
    }
    return 0;
  }

 private:
  void RebuildEngine() { engine_ = std::make_unique<Engine>(store_.get(),
                                                            rules_.get()); }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) return true;
    std::string rest;
    std::getline(in, rest);
    const std::string arg(StripWhitespace(rest));

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "commands: run <query> | trinit <query> | plan <query> | "
          "rules <p> <o> | k <n> | save <prefix> | load <prefix> | stats | "
          "quit\n");
    } else if (cmd == "k") {
      const int value = std::atoi(arg.c_str());
      if (value >= 1) {
        k_ = static_cast<size_t>(value);
        std::printf("k = %zu\n", k_);
      } else {
        std::printf("usage: k <positive integer>\n");
      }
    } else if (cmd == "run" || cmd == "trinit") {
      Execute(arg, cmd == "run" ? Strategy::kSpecQp : Strategy::kTrinit);
    } else if (cmd == "plan") {
      Plan(arg);
    } else if (cmd == "rules") {
      ShowRules(arg);
    } else if (cmd == "save") {
      Save(arg);
    } else if (cmd == "load") {
      Load(arg);
    } else if (cmd == "stats") {
      std::printf("store: %zu triples, %zu terms; rules: %zu simple, %zu "
                  "chain; posting cache: %zu lists (%llu hits / %llu "
                  "misses)\n",
                  store_->size(), store_->dict().size(),
                  rules_->total_rules(), rules_->total_chain_rules(),
                  engine_->postings().size(),
                  static_cast<unsigned long long>(engine_->postings().hits()),
                  static_cast<unsigned long long>(
                      engine_->postings().misses()));
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

  void Execute(const std::string& text, Strategy strategy) {
    auto parsed = ParseQuery(text, store_->dict());
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.status().ToString().c_str());
      return;
    }
    const auto result = engine_->Execute(parsed.value(), k_, strategy);
    std::printf("[%s] plan %s — %.3f ms, %llu answer objects\n",
                std::string(StrategyName(strategy)).c_str(),
                result.plan.ToString().c_str(),
                result.stats.plan_ms + result.stats.exec_ms,
                static_cast<unsigned long long>(result.stats.answer_objects));
    for (size_t i = 0; i < result.rows.size(); ++i) {
      std::printf("  #%-3zu %s\n", i + 1,
                  RowToString(result.rows[i], parsed.value(), store_->dict())
                      .c_str());
    }
    if (result.rows.empty()) std::printf("  (no answers)\n");
  }

  void Plan(const std::string& text) {
    auto parsed = ParseQuery(text, store_->dict());
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.status().ToString().c_str());
      return;
    }
    PlanDiagnostics diag;
    const QueryPlan plan = engine_->PlanOnly(parsed.value(), k_, &diag);
    std::printf("plan %s   (E_Q(k=%zu) = %s, est. %0.f answers)\n",
                plan.ToString().c_str(), k_,
                DoubleToString(diag.eq_k, 3).c_str(),
                diag.cardinality_estimate);
    for (const PatternDecision& d : diag.decisions) {
      std::printf("  q%zu: %s E_Q'(1)=%s -> %s\n", d.pattern_index,
                  d.has_relaxations ? "has relaxations," : "no relaxations,",
                  DoubleToString(d.eq_prime_top, 3).c_str(),
                  d.relax ? "RELAX" : "join group");
    }
  }

  void ShowRules(const std::string& arg) {
    std::istringstream in(arg);
    std::string p;
    std::string o;
    in >> p >> o;
    if (o.empty()) {
      o = p;
      p = "rdf:type";
    }
    auto pid = store_->dict().Find(p);
    auto oid = store_->dict().Find(o);
    if (!pid.ok() || !oid.ok()) {
      std::printf("unknown term(s)\n");
      return;
    }
    const PatternKey key{kInvalidTermId, pid.value(), oid.value()};
    const auto rules = rules_->RulesFor(key);
    if (rules.empty()) std::printf("  (no rules)\n");
    for (const RelaxationRule& rule : rules) {
      std::printf("  %s\n", RuleToString(rule, store_->dict()).c_str());
    }
    for (const ChainRelaxationRule& rule : rules_->ChainRulesFor(key)) {
      std::printf("  %s\n", ChainRuleToString(rule, store_->dict()).c_str());
    }
  }

  void Save(const std::string& prefix) {
    if (prefix.empty()) {
      std::printf("usage: save <prefix>\n");
      return;
    }
    Status s = SaveStore(*store_, prefix + ".store");
    if (s.ok()) s = SaveRules(*rules_, prefix + ".rules");
    std::printf("%s\n", s.ok() ? "saved" : s.ToString().c_str());
  }

  void Load(const std::string& prefix) {
    if (prefix.empty()) {
      std::printf("usage: load <prefix>\n");
      return;
    }
    auto store = LoadStore(prefix + ".store");
    if (!store.ok()) {
      std::printf("%s\n", store.status().ToString().c_str());
      return;
    }
    auto rules = LoadRules(prefix + ".rules");
    if (!rules.ok()) {
      std::printf("%s\n", rules.status().ToString().c_str());
      return;
    }
    *store_ = std::move(store).value();
    *rules_ = std::move(rules).value();
    RebuildEngine();
    std::printf("loaded: %zu triples, %zu rules\n", store_->size(),
                rules_->total_rules());
  }

  std::unique_ptr<TripleStore> store_;
  std::unique_ptr<RelaxationIndex> rules_;
  std::unique_ptr<Engine> engine_;
  size_t k_ = 10;
};

}  // namespace

int main() {
  Shell shell;
  return shell.Loop();
}
