// The paper's Twitter scenario: tweets scored by retweet count, queried by
// tag conjunctions, with relaxations mined from tag co-occurrence
// (w = #tweets(T1 ∧ T2) / #tweets(T1), section 4.2). Original conjunctions
// are sparse, so relaxations are what fills the top-k — the regime in
// which Spec-QP's predictions matter most.
//
//   $ ./build/examples/twitter_trending

#include <cstdio>

#include "core/engine.h"
#include "datasets/twitter_generator.h"
#include "datasets/workload.h"
#include "relax/relaxation.h"
#include "topk/scored_row.h"
#include "util/logging.h"

using namespace specqp;

int main() {
  TwitterConfig config;
  config.num_tweets = 30000;
  config.num_topics = 20;
  config.tags_per_topic = 25;
  const TwitterDataset data = GenerateTwitter(config);
  std::printf("twitter store: %zu triples, %zu relaxation rules\n\n",
              data.store.size(), data.rules.total_rules());

  // Take the two hottest tags of the hottest topic.
  const TermId tag_a = data.topic_tags[0][0];
  const TermId tag_b = data.topic_tags[0][1];
  std::printf("relaxations for <%s>:\n",
              std::string(data.store.dict().Name(tag_a)).c_str());
  size_t shown = 0;
  for (const RelaxationRule& rule : data.rules.RulesFor(
           PatternKey{kInvalidTermId, data.has_tag, tag_a})) {
    std::printf("  %s\n", RuleToString(rule, data.store.dict()).c_str());
    if (++shown >= 5) break;
  }

  Query query;
  const VarId s = query.GetOrAddVariable("tweet");
  query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                 PatternTerm::Const(data.has_tag),
                                 PatternTerm::Const(tag_a)));
  query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                 PatternTerm::Const(data.has_tag),
                                 PatternTerm::Const(tag_b)));
  query.AddProjection(s);
  std::printf("\nquery: %s\n", query.ToString(data.store.dict()).c_str());

  Engine engine(&data.store, &data.rules);
  for (Strategy strategy : {Strategy::kTrinit, Strategy::kSpecQp}) {
    const QueryResponse response =
        engine.Submit(QueryRequest::FromQuery(query, /*k=*/10, strategy))
            .get();
    SPECQP_CHECK(response.ok()) << response.status.ToString();
    std::printf("\n[%s] plan %s — %.3f ms, %llu answer objects\n",
                std::string(StrategyName(strategy)).c_str(),
                response.plan.ToString().c_str(),
                response.stats.plan_ms + response.stats.exec_ms,
                static_cast<unsigned long long>(
                    response.stats.answer_objects));
    for (size_t i = 0; i < response.rows.size() && i < 5; ++i) {
      std::printf("  #%zu %s\n", i + 1,
                  RowToString(response.rows[i], query, data.store.dict())
                      .c_str());
    }
  }
  return 0;
}
