// Planner introspection: watch PLANGEN's decision flip as k grows. For each
// k, the example prints the expected k-th score of the original query
// E_Q(k), each pattern's expected best relaxed score E_Q'(1), and the plan
// that falls out (a pattern becomes a singleton exactly when
// E_Q'(1) > E_Q(k), Algorithm 1).
//
//   $ ./build/examples/what_if_planner

#include <cstdio>

#include "core/engine.h"
#include "datasets/xkg_generator.h"
#include "datasets/workload.h"
#include "util/logging.h"
#include "util/string_util.h"

using namespace specqp;

int main() {
  XkgConfig config;
  config.num_entities = 8000;
  config.num_domains = 8;
  config.types_per_domain = 12;
  config.num_attributes = 3;
  const XkgDataset data = GenerateXkg(config);

  XkgWorkloadConfig wl;
  wl.queries_per_size = 1;
  wl.min_relaxations = 5;
  const std::vector<Query> workload = MakeXkgWorkload(data, wl);
  const Query& query = workload[1];  // the 3-pattern query
  std::printf("query: %s\n\n", query.ToString(data.store.dict()).c_str());

  Engine engine(&data.store, &data.rules);
  std::printf("%-6s %-12s %-30s %-18s\n", "k", "E_Q(k)",
              "E_Q'(1) per pattern", "plan");
  for (size_t k : {1, 2, 5, 10, 15, 20, 50, 100}) {
    // Explain is the plan-introspection entry point: plan + PLANGEN
    // diagnostics, no execution.
    const QueryResponse explained =
        engine.Explain(QueryRequest::FromQuery(query, k));
    std::string relaxed_scores;
    for (const PatternDecision& d : explained.diagnostics.decisions) {
      relaxed_scores += StrFormat("%s%s", relaxed_scores.empty() ? "" : " ",
                                  DoubleToString(d.eq_prime_top, 3).c_str());
      relaxed_scores += d.relax ? "*" : " ";
    }
    std::printf("%-6zu %-12s %-30s %-18s\n", k,
                DoubleToString(explained.diagnostics.eq_k, 3).c_str(),
                relaxed_scores.c_str(), explained.plan.ToString().c_str());
  }
  std::printf(
      "\n('*' marks patterns whose relaxations PLANGEN decided to process; "
      "as k grows, E_Q(k) falls and more patterns cross the threshold.)\n");

  // Cross-check the final plan by executing it.
  const QueryResponse response =
      engine.Submit(QueryRequest::FromQuery(query, 20)).get();
  SPECQP_CHECK(response.ok()) << response.status.ToString();
  std::printf("\nexecuted k=20: %zu answers, %llu answer objects, %.3f ms\n",
              response.rows.size(),
              static_cast<unsigned long long>(response.stats.answer_objects),
              response.stats.plan_ms + response.stats.exec_ms);
  return 0;
}
