// The paper's running example at scale: "Which singers also write lyrics
// and play guitar and piano?" over a synthetic music knowledge graph with
// mined relaxations, comparing TriniT (all relaxations processed) against
// Spec-QP (speculatively pruned).
//
//   $ ./build/examples/music_kg

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "query/parser.h"
#include "relax/miner.h"
#include "relax/relaxation.h"
#include "topk/scored_row.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/zipf.h"

using namespace specqp;

namespace {

// Builds a music KG: artists with Zipfian popularity; roles assigned with
// correlated co-membership (every singer is also a vocalist, most
// guitarists are musicians, ...) so that mining recovers Table-1-style
// relaxations.
TripleStore BuildMusicKg(size_t num_artists) {
  Rng rng(4242);
  TripleStore store;
  struct Role {
    const char* name;
    double base_prob;                 // membership probability
    const char* implies;              // nearly-always co-assigned role
    double implies_prob;
  };
  const std::vector<Role> roles = {
      {"singer", 0.20, "vocalist", 0.95},
      {"vocalist", 0.15, "artist", 1.0},
      {"jazz_singer", 0.04, "vocalist", 0.9},
      {"lyricist", 0.12, "writer", 0.9},
      {"writer", 0.10, "artist", 1.0},
      {"guitarist", 0.15, "musician", 0.95},
      {"pianist", 0.10, "musician", 0.95},
      {"percussionist", 0.05, "musician", 0.95},
      {"instrumentalist", 0.08, "musician", 1.0},
      {"musician", 0.20, "artist", 1.0},
      {"artist", 0.25, nullptr, 0.0},
  };
  for (size_t i = 0; i < num_artists; ++i) {
    const std::string artist = "artist" + std::to_string(i);
    const double popularity =
        1e5 / std::pow(static_cast<double>(i + 1), 0.8);
    for (const Role& role : roles) {
      if (!rng.NextBool(role.base_prob)) continue;
      store.Add(artist, "rdf:type", role.name, popularity);
      if (role.implies != nullptr && rng.NextBool(role.implies_prob)) {
        store.Add(artist, "rdf:type", role.implies, popularity);
      }
    }
  }
  store.Finalize();
  return store;
}

}  // namespace

int main() {
  TripleStore store = BuildMusicKg(4000);
  std::printf("music KG: %zu triples over %zu terms\n", store.size(),
              store.dict().size());

  // Mine relaxation rules from role co-membership (the paper's weighting).
  RelaxationIndex rules;
  MinerOptions miner;
  miner.min_support = 5;
  const Status mined = MineObjectCooccurrence(
      store, store.MustId("rdf:type"), miner, &rules);
  SPECQP_CHECK(mined.ok()) << mined.ToString();
  std::printf("mined %zu relaxation rules\n\n", rules.total_rules());

  // Show the rules for <singer> — compare with Table 1 of the paper.
  const PatternKey singer_key{kInvalidTermId, store.MustId("rdf:type"),
                              store.MustId("singer")};
  std::printf("top relaxations for <singer>:\n");
  size_t shown = 0;
  for (const RelaxationRule& rule : rules.RulesFor(singer_key)) {
    std::printf("  %s\n", RuleToString(rule, store.dict()).c_str());
    if (++shown >= 4) break;
  }

  // The intro query.
  Engine engine(&store, &rules);
  const char* text =
      "SELECT ?s WHERE { ?s <rdf:type> <singer> . ?s <rdf:type> <lyricist> ."
      " ?s <rdf:type> <guitarist> . ?s <rdf:type> <pianist> }";
  std::printf("\nquery: %s\n", text);

  for (Strategy strategy : {Strategy::kTrinit, Strategy::kSpecQp}) {
    QueryResponse response =
        engine.Submit(QueryRequest::FromText(text, /*k=*/10, strategy)).get();
    SPECQP_CHECK(response.ok()) << response.status.ToString();
    std::printf("\n[%s] plan %s\n", std::string(StrategyName(strategy)).c_str(),
                response.plan.ToString().c_str());
    std::printf("  %-28s %.3f ms (plan %.3f ms)\n", "runtime:",
                response.stats.plan_ms + response.stats.exec_ms,
                response.stats.plan_ms);
    std::printf("  %-28s %llu\n", "answer objects:",
                static_cast<unsigned long long>(
                    response.stats.answer_objects));
    auto parsed = ParseQuery(text, store.dict());
    for (size_t i = 0; i < response.rows.size() && i < 3; ++i) {
      std::printf("  #%zu %s\n", i + 1,
                  RowToString(response.rows[i], parsed.value(), store.dict())
                      .c_str());
    }
  }
  std::printf(
      "\nBoth strategies agree on the top answers; Spec-QP gets there with "
      "fewer intermediate answer objects whenever relaxations are "
      "prunable.\n");
  return 0;
}
