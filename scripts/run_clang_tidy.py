#!/usr/bin/env python3
"""clang-tidy driver with a committed-baseline ratchet.

Runs clang-tidy (config: .clang-tidy at the repo root) over every
first-party translation unit in a compile_commands.json database and
compares the findings against scripts/clang_tidy_baseline.txt:

  * a finding in the run but NOT in the baseline  -> NEW, fails the run;
  * a finding in the baseline but NOT in the run  -> fixed, reported as
    such (tighten the baseline with --update-baseline);
  * the intersection is tolerated legacy debt.

Findings are normalised to (relative path, check, message) — line numbers
are deliberately dropped so unrelated edits shifting a legacy finding by a
few lines don't page anyone. The baseline is committed, so burning it down
is an ordinary reviewed diff.

Typical use (CI runs exactly this; see .github/workflows/ci.yml):
  cmake --preset tidy && cmake --build --preset tidy
  scripts/run_clang_tidy.py --build-dir build-tidy

stdlib-only. Exits 0 with a notice when clang-tidy is not installed, so
developer machines without LLVM are not blocked — the CI job installs it
and does the real enforcement.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "clang_tidy_baseline.txt")

# First-party TUs only: system headers and third-party code (none vendored
# today, but the filter is cheap insurance) are not ours to lint.
FIRST_PARTY = re.compile(r"/(src|bench|tools|examples)/.*\.cc$")

# "path:line:col: warning: message [check]" — the only line shape we keep.
FINDING_RE = re.compile(
    r"^(?P<path>[^:]+):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+(?P<message>.*?)\s+\[(?P<check>[^\]]+)\]$")


def load_compile_db(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit("error: %s not found — configure with the 'tidy' preset "
                 "(CMAKE_EXPORT_COMPILE_COMMANDS=ON)" % db_path)
    with open(db_path, encoding="utf-8") as f:
        return json.load(f)


def normalise(root, path, check, message):
    rel = os.path.relpath(os.path.abspath(path), root)
    return "%s\t%s\t%s" % (rel, check, message.strip())


def run_one(tidy, build_dir, source):
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", source],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    return proc.stdout


def collect_findings(tidy, build_dir, sources, root, jobs):
    findings = set()
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for out in pool.map(
                lambda s: run_one(tidy, build_dir, s), sources):
            for line in out.splitlines():
                m = FINDING_RE.match(line)
                if not m:
                    continue
                findings.add(normalise(root, m.group("path"),
                                       m.group("check"),
                                       m.group("message")))
    return findings


def load_baseline():
    if not os.path.exists(BASELINE):
        return set()
    with open(BASELINE, encoding="utf-8") as f:
        return {line.rstrip("\n") for line in f
                if line.strip() and not line.startswith("#")}


def write_baseline(findings):
    with open(BASELINE, "w", encoding="utf-8") as f:
        f.write("# clang-tidy legacy findings tolerated by "
                "scripts/run_clang_tidy.py.\n"
                "# One per line: <relpath>\\t<check>\\t<message>. "
                "Shrink-only, via --update-baseline.\n")
        for line in sorted(findings):
            f.write(line + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build-tidy",
                        help="build dir with compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary to use")
    parser.add_argument("--jobs", type=int,
                        default=max(1, (os.cpu_count() or 2) - 1))
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current findings")
    args = parser.parse_args()

    tidy = shutil.which(args.clang_tidy)
    if tidy is None:
        print("run_clang_tidy: clang-tidy not installed on this machine; "
              "skipping (CI enforces this gate)")
        return 0

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    db = load_compile_db(args.build_dir)
    sources = sorted({entry["file"] for entry in db
                      if FIRST_PARTY.search(entry["file"])})
    if not sources:
        sys.exit("error: no first-party sources in the compile database")

    print("run_clang_tidy: %d TUs, %d jobs" % (len(sources), args.jobs))
    findings = collect_findings(tidy, args.build_dir, sources, root,
                                args.jobs)

    if args.update_baseline:
        write_baseline(findings)
        print("baseline rewritten: %d finding(s)" % len(findings))
        return 0

    baseline = load_baseline()
    new = sorted(findings - baseline)
    fixed = sorted(baseline - findings)

    if fixed:
        print("%d baseline finding(s) no longer fire — consider "
              "--update-baseline to lock the win in:" % len(fixed))
        for line in fixed:
            print("  fixed: " + line.replace("\t", " "))
    if new:
        print("%d NEW clang-tidy finding(s) (not in %s):"
              % (len(new), os.path.relpath(BASELINE, root)))
        for line in new:
            print("  " + line.replace("\t", " "))
        return 1
    print("run_clang_tidy: no new findings "
          "(%d tolerated legacy)" % len(baseline & findings))
    return 0


if __name__ == "__main__":
    sys.exit(main())
