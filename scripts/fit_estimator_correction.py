#!/usr/bin/env python3
"""Fit per-predicate-class estimator corrections from bench artifacts.

Usage:
    fit_estimator_correction.py ARTIFACT.json [MORE.json ...] [--out TABLE]
    fit_estimator_correction.py --self-test

Closes the estimate-calibration loop (stats/calibration.h): bench runs dump
the engine's CalibrationLog into their ``--json`` artifacts as records of
the form ``{"signature": ..., "estimated_m": ..., "actual_m": ...}``; this
script walks any number of artifacts (the records may sit anywhere in the
JSON tree), groups them by pattern signature — the per-predicate class
``"?|<predicate>|#"`` shape defined by ``PatternSignature()`` — and fits one
multiplicative correction per class as the geometric mean of
``actual_m / estimated_m`` over that class's observations. The geometric
mean is the right average for a multiplicative error model: it minimises
squared log-error, and a class that alternates 2x-over and 2x-under fits to
exactly 1.0 instead of 1.25.

The emitted table is what ``StatisticsCatalog::LoadCalibration`` parses at
engine open (``EngineOptions::calibration_path``):

    # specqp-calibration v1
    <signature>\t<multiplier>

Multipliers are clamped to [0.01, 100] (matching the loader) and classes
with fewer than ``--min-samples`` observations are skipped — a one-off
observation is noise, not a class-level bias. Records with a non-positive
estimate or actual are censored (log of zero is undefined; an empty list
is an emptiness fact, not a scale error).

Only the Python standard library is used.
"""

import argparse
import json
import math
import sys

HEADER = "# specqp-calibration v1"
CLAMP_LO = 0.01
CLAMP_HI = 100.0


def collect_records(node, out):
    """Walks a JSON tree, appending every calibration pattern record.

    A record is any dict carrying the three fields the engine's
    CalibrationLog dumps; surrounding structure is irrelevant, so the
    script keeps working if a bench moves the log inside its artifact.
    """
    if isinstance(node, dict):
        if ("signature" in node and "estimated_m" in node
                and "actual_m" in node):
            out.append(node)
        for value in node.values():
            collect_records(value, out)
    elif isinstance(node, list):
        for value in node:
            collect_records(value, out)


def fit(records, min_samples=1):
    """Returns {signature: multiplier} from calibration pattern records."""
    log_ratios = {}
    for record in records:
        try:
            estimated = float(record["estimated_m"])
            actual = float(record["actual_m"])
            signature = str(record["signature"])
        except (KeyError, TypeError, ValueError):
            continue
        if estimated <= 0.0 or actual <= 0.0:
            continue
        log_ratios.setdefault(signature, []).append(
            math.log(actual / estimated))

    corrections = {}
    for signature, logs in log_ratios.items():
        if len(logs) < min_samples:
            continue
        multiplier = math.exp(sum(logs) / len(logs))
        corrections[signature] = min(max(multiplier, CLAMP_LO), CLAMP_HI)
    return corrections


def emit(corrections, stream):
    stream.write(HEADER + "\n")
    for signature in sorted(corrections):
        stream.write(f"{signature}\t{corrections[signature]:.6g}\n")


def self_test():
    records = [
        # Estimator 4x low on this class, twice observed: fit 4.0.
        {"signature": "?|plays|#", "estimated_m": 25, "actual_m": 100},
        {"signature": "?|plays|#", "estimated_m": 50, "actual_m": 200},
        # Symmetric over/under-estimates cancel: fit 1.0 exactly.
        {"signature": "?|bornIn|#", "estimated_m": 10, "actual_m": 20},
        {"signature": "?|bornIn|#", "estimated_m": 20, "actual_m": 10},
        # Absurd bias clamps at the loader's bound.
        {"signature": "?|rare|#", "estimated_m": 1, "actual_m": 10**6},
        # Censored: empty lists and zero estimates carry no scale signal.
        {"signature": "?|empty|#", "estimated_m": 5, "actual_m": 0},
        {"signature": "?|fresh|#", "estimated_m": 0, "actual_m": 7},
    ]
    corrections = fit(records)
    assert abs(corrections["?|plays|#"] - 4.0) < 1e-9, corrections
    assert abs(corrections["?|bornIn|#"] - 1.0) < 1e-9, corrections
    assert corrections["?|rare|#"] == CLAMP_HI, corrections
    assert "?|empty|#" not in corrections and "?|fresh|#" not in corrections

    # Records are found wherever the artifact nests them, and min-samples
    # drops single-observation classes.
    artifact = {"bench": "micro_operators",
                "calibration": {"patterns": records[:2]},
                "runs": [{"calibration": {"patterns": [records[4]]}}]}
    found = []
    collect_records(artifact, found)
    assert len(found) == 3, found
    filtered = fit(found, min_samples=2)
    assert set(filtered) == {"?|plays|#"}, filtered

    # Round-trip through the emitted table format.
    import io
    buffer = io.StringIO()
    emit(corrections, buffer)
    lines = buffer.getvalue().splitlines()
    assert lines[0] == HEADER
    parsed = {}
    for line in lines[1:]:
        signature, multiplier = line.split("\t")
        parsed[signature] = float(multiplier)
    assert abs(parsed["?|plays|#"] - 4.0) < 1e-6

    print("self-test OK: geometric-mean fit, clamping, censoring, nested "
          "record discovery, min-samples filter, and table round-trip")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="*",
                        help="BENCH_*.json artifacts holding calibration "
                             "records")
    parser.add_argument("--out", default=None,
                        help="correction table path (default: stdout)")
    parser.add_argument("--min-samples", type=int, default=1,
                        help="observations required per class (default 1)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the fit on synthetic records")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.artifacts:
        parser.error("at least one artifact is required (or --self-test)")

    records = []
    for path in args.artifacts:
        with open(path, encoding="utf-8") as f:
            collect_records(json.load(f), records)
    corrections = fit(records, args.min_samples)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            emit(corrections, f)
    else:
        emit(corrections, sys.stdout)
    print(f"fitted {len(corrections)} correction class(es) from "
          f"{len(records)} record(s) across {len(args.artifacts)} "
          f"artifact(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
