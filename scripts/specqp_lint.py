#!/usr/bin/env python3
"""Repo-invariant linter for Spec-QP.

Enforces cross-cutting contracts that neither the compiler nor clang-tidy
can see, because each one spans multiple files or encodes a project-level
convention:

  interrupt-poll       Every operator Next() in src/topk/*.cc polls
                       ExecContext::Interrupted() (the cancellation /
                       deadline contract from the admission layer), or
                       carries an explicit waiver comment saying why a
                       poll is unnecessary.

  fault-site-registry  Every fault-injection site string used with
                       FaultShouldFail(...) is registered in
                       kFaultSiteRegistry (src/util/fault_injector.h), and
                       every registered site is actually probed somewhere.
                       Keeps `--fault-plan` spellings discoverable and
                       typo-proof in both directions.

  comparability-keys   Every key scripts/compare_bench_json.py treats as a
                       run-comparability dimension is stamped into bench
                       artifacts by bench/bench_common.cc. A key the gate
                       compares but the writer never emits would silently
                       pass every A/B check.

  mutex-guard          No raw std::mutex / std::shared_mutex data members
                       outside the annotated wrapper (src/util/mutex.h) —
                       raw mutexes are invisible to Clang -Wthread-safety.
                       Every `Mutex` member must guard at least one field
                       via SPECQP_GUARDED_BY(<member>), or carry a waiver.

Waivers: append `// specqp-lint: allow-<rule>` (plus a justification) on
or directly above the offending line. Waivers are themselves part of the
reviewed diff, so every exception has an owner and a reason.

stdlib-only by design; runs anywhere Python 3.8+ exists, including the CI
static-analysis job (see .github/workflows/ci.yml) and `--self-test` mode,
which proves each rule still trips on a synthetic violation before
trusting its silence on the real tree.

Usage:
  scripts/specqp_lint.py [--root DIR]      lint the tree (exit 1 on findings)
  scripts/specqp_lint.py --self-test       run the fixture battery first,
                                           then lint the real tree
"""

import argparse
import os
import re
import sys
import tempfile

# --------------------------------------------------------------------------
# Shared helpers


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def read_lines(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        return f.read().splitlines()


def walk_sources(root, subdir, exts):
    base = os.path.join(root, subdir)
    for dirpath, _, files in os.walk(base):
        for name in sorted(files):
            if os.path.splitext(name)[1] in exts:
                yield os.path.join(dirpath, name)


def has_waiver(lines, idx, rule):
    """True when line idx or one of the 3 lines above carries the waiver."""
    tag = "specqp-lint: allow-" + rule
    for i in range(max(0, idx - 3), idx + 1):
        if tag in lines[i]:
            return True
    return False


def extract_function_body(lines, start_idx):
    """Lines of the function whose definition starts at start_idx (brace
    counted; good enough for clang-format'ed code, which this tree is)."""
    depth = 0
    body = []
    opened = False
    for i in range(start_idx, len(lines)):
        body.append(lines[i])
        depth += lines[i].count("{") - lines[i].count("}")
        if "{" in lines[i]:
            opened = True
        if opened and depth <= 0:
            break
    return body


# --------------------------------------------------------------------------
# Rule: interrupt-poll

NEXT_DEF_RE = re.compile(r"^\s*bool\s+\w+::Next\s*\(")


def check_interrupt_poll(root):
    findings = []
    for path in walk_sources(root, os.path.join("src", "topk"), {".cc"}):
        lines = read_lines(path)
        for idx, line in enumerate(lines):
            if not NEXT_DEF_RE.match(line):
                continue
            if has_waiver(lines, idx, "no-interrupt-poll"):
                continue
            body = extract_function_body(lines, idx)
            if not any("Interrupted()" in b for b in body):
                findings.append(Finding(
                    "interrupt-poll", path, idx + 1,
                    "operator Next() neither polls Interrupted() nor "
                    "carries '// specqp-lint: allow-no-interrupt-poll'"))
    return findings


# --------------------------------------------------------------------------
# Rule: fault-site-registry

FAULT_CALL_RE = re.compile(r'FaultShouldFail\s*\(\s*"([^"]+)"')
REGISTRY_RE = re.compile(r'kFaultSiteRegistry\[\]\s*=\s*\{([^}]*)\}',
                         re.DOTALL)


def parse_fault_registry(root):
    header = os.path.join(root, "src", "util", "fault_injector.h")
    with open(header, encoding="utf-8") as f:
        text = f.read()
    m = REGISTRY_RE.search(text)
    if not m:
        return None, header
    return set(re.findall(r'"([^"]+)"', m.group(1))), header


def check_fault_sites(root):
    registry, header = parse_fault_registry(root)
    if registry is None:
        return [Finding("fault-site-registry", header, 1,
                        "kFaultSiteRegistry not found")]
    findings = []
    used = {}
    for path in walk_sources(root, "src", {".cc", ".h"}):
        if path.endswith(os.path.join("util", "fault_injector.h")):
            continue
        lines = read_lines(path)
        for idx, line in enumerate(lines):
            for site in FAULT_CALL_RE.findall(line):
                used.setdefault(site, (path, idx + 1))
                if site not in registry and not has_waiver(
                        lines, idx, "unregistered-fault-site"):
                    findings.append(Finding(
                        "fault-site-registry", path, idx + 1,
                        "fault site \"%s\" is not in kFaultSiteRegistry "
                        "(src/util/fault_injector.h)" % site))
    for site in sorted(registry - set(used)):
        findings.append(Finding(
            "fault-site-registry", header, 1,
            "registered fault site \"%s\" is never probed under src/"
            % site))
    return findings


# --------------------------------------------------------------------------
# Rule: comparability-keys

COMPARABILITY_RE = re.compile(r"COMPARABILITY_KEYS\s*=\s*\(([^)]*)\)",
                              re.DOTALL)


def check_comparability_keys(root):
    gate = os.path.join(root, "scripts", "compare_bench_json.py")
    writer = os.path.join(root, "bench", "bench_common.cc")
    with open(gate, encoding="utf-8") as f:
        m = COMPARABILITY_RE.search(f.read())
    if not m:
        return [Finding("comparability-keys", gate, 1,
                        "COMPARABILITY_KEYS tuple not found")]
    keys = re.findall(r'"([^"]+)"', m.group(1))
    with open(writer, encoding="utf-8") as f:
        writer_text = f.read()
    findings = []
    for key in keys:
        if ('doc.Set("%s"' % key) not in writer_text:
            findings.append(Finding(
                "comparability-keys", writer, 1,
                "comparability key \"%s\" (compare_bench_json.py) is never "
                "stamped via doc.Set in BenchMain — the perf gate would "
                "compare runs that never record it" % key))
    return findings


# --------------------------------------------------------------------------
# Rule: mutex-guard

RAW_MUTEX_RE = re.compile(
    r"^\s*(?:mutable\s+)?std::(?:shared_)?mutex\s+\w+\s*;")
# A Mutex data member: `Mutex mu_;` / `mutable Mutex quarantine_mutex_;`.
# References (`Mutex& mu`) and locals inside functions are not members; we
# only scan headers, where class bodies live and locals are rare, and
# require the declaration shape `Mutex <name>;`.
MUTEX_MEMBER_RE = re.compile(r"^\s*(?:mutable\s+)?Mutex\s+(\w+)\s*;")


def check_mutex_guards(root):
    findings = []
    wrapper = os.path.join("util", "mutex.h")
    for path in walk_sources(root, "src", {".cc", ".h"}):
        if path.endswith(wrapper):
            continue
        lines = read_lines(path)
        text = "\n".join(lines)
        for idx, line in enumerate(lines):
            if RAW_MUTEX_RE.match(line):
                if not has_waiver(lines, idx, "raw-mutex"):
                    findings.append(Finding(
                        "mutex-guard", path, idx + 1,
                        "raw std::mutex member is invisible to Clang "
                        "-Wthread-safety; use specqp::Mutex "
                        "(src/util/mutex.h)"))
                continue
            m = MUTEX_MEMBER_RE.match(line)
            if m and path.endswith(".h"):
                name = m.group(1)
                if ("SPECQP_GUARDED_BY(%s)" % name) not in text and \
                        not has_waiver(lines, idx, "unguarded-mutex"):
                    findings.append(Finding(
                        "mutex-guard", path, idx + 1,
                        "Mutex member '%s' guards nothing: no field is "
                        "annotated SPECQP_GUARDED_BY(%s)" % (name, name)))
    return findings


RULES = (
    ("interrupt-poll", check_interrupt_poll),
    ("fault-site-registry", check_fault_sites),
    ("comparability-keys", check_comparability_keys),
    ("mutex-guard", check_mutex_guards),
)


def run_lint(root):
    findings = []
    for _, fn in RULES:
        findings.extend(fn(root))
    return findings


# --------------------------------------------------------------------------
# Self-test: synthetic trees that must trip each rule, plus clean variants
# that must not. A rule whose violation fixture passes is a dead rule.


def _write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


MINIMAL_REGISTRY = """\
inline constexpr std::string_view kFaultSiteRegistry[] = {
    "store.open",
};
"""

MINIMAL_GATE = """\
COMPARABILITY_KEYS = ("bench", "threads")
"""

MINIMAL_WRITER = """\
  doc.Set("bench", name);
  doc.Set("threads", threads);
"""


def _scaffold_clean_tree(root):
    """Smallest tree that passes every rule."""
    _write(root, "src/util/fault_injector.h", MINIMAL_REGISTRY)
    _write(root, "src/util/mutex.h", "class Mutex {};\n")
    _write(root, "scripts/compare_bench_json.py", MINIMAL_GATE)
    _write(root, "bench/bench_common.cc", MINIMAL_WRITER)
    _write(root, "src/topk/scan.cc",
           "bool ScanIterator::Next(ScoredRow* out) {\n"
           "  if (ctx_->Interrupted()) return false;\n"
           "  return true;\n"
           "}\n")
    _write(root, "src/rdf/io.cc",
           '  if (FaultShouldFail("store.open")) return Fail();\n')
    _write(root, "src/rdf/cache.h",
           "  mutable Mutex mu_;\n"
           "  int guarded SPECQP_GUARDED_BY(mu_);\n")


def self_test():
    cases = []  # (name, mutate(root), expected_rule or None)

    cases.append(("clean tree has no findings", lambda r: None, None))
    cases.append((
        "Next() without a poll trips interrupt-poll",
        lambda r: _write(r, "src/topk/bad.cc",
                         "bool BadIterator::Next(ScoredRow* out) {\n"
                         "  return input_->Next(out);\n"
                         "}\n"),
        "interrupt-poll"))
    cases.append((
        "waived Next() passes interrupt-poll",
        lambda r: _write(r, "src/topk/waived.cc",
                         "// specqp-lint: allow-no-interrupt-poll (reason)\n"
                         "bool WaivedIterator::Next(ScoredRow* out) {\n"
                         "  return input_->Next(out);\n"
                         "}\n"),
        None))
    cases.append((
        "unregistered fault site trips fault-site-registry",
        lambda r: _write(r, "src/rdf/typo.cc",
                         '  if (FaultShouldFail("store.opne")) return;\n'),
        "fault-site-registry"))
    cases.append((
        "never-probed registry entry trips fault-site-registry",
        lambda r: _write(r, "src/util/fault_injector.h",
                         MINIMAL_REGISTRY.replace(
                             '"store.open",',
                             '"store.open", "ghost.site",')),
        "fault-site-registry"))
    cases.append((
        "unstamped comparability key trips comparability-keys",
        lambda r: _write(r, "bench/bench_common.cc",
                         '  doc.Set("bench", name);\n'),
        "comparability-keys"))
    cases.append((
        "raw std::mutex member trips mutex-guard",
        lambda r: _write(r, "src/core/raw.h",
                         "  std::mutex mu_;\n"),
        "mutex-guard"))
    cases.append((
        "unguarded Mutex member trips mutex-guard",
        lambda r: _write(r, "src/core/unguarded.h",
                         "  Mutex lonely_mu_;\n"),
        "mutex-guard"))
    cases.append((
        "waived unguarded Mutex passes mutex-guard",
        lambda r: _write(r, "src/core/waived.h",
                         "  // specqp-lint: allow-unguarded-mutex (reason)\n"
                         "  Mutex condition_only_mu_;\n"),
        None))

    failures = 0
    for name, mutate, expected_rule in cases:
        with tempfile.TemporaryDirectory(prefix="specqp_lint_") as tmp:
            _scaffold_clean_tree(tmp)
            mutate(tmp)
            findings = run_lint(tmp)
            rules_hit = {f.rule for f in findings}
            if expected_rule is None:
                ok = not findings
                detail = "; ".join(str(f) for f in findings)
            else:
                ok = expected_rule in rules_hit
                detail = "expected a %s finding, got %s" % (
                    expected_rule, sorted(rules_hit) or "none")
            print("  %s  %s" % ("PASS" if ok else "FAIL", name))
            if not ok:
                if detail:
                    print("        %s" % detail)
                failures += 1
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture battery, then lint the tree")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.self_test:
        print("specqp_lint self-test:")
        failures = self_test()
        if failures:
            print("self-test: %d case(s) FAILED" % failures)
            return 1
        print("self-test: all cases passed")

    findings = run_lint(root)
    for f in findings:
        print(f)
    if findings:
        print("specqp_lint: %d finding(s)" % len(findings))
        return 1
    print("specqp_lint: clean (%d rules)" % len(RULES))
    return 0


if __name__ == "__main__":
    sys.exit(main())
