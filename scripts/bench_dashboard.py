#!/usr/bin/env python3
"""Render archived BENCH_*.json artifacts into a static HTML dashboard.

CI's perf-gate job archives one artifact per merge to main (see
docs/BENCHMARKS.md, "The perf-regression gate"). Download any stretch of
that trajectory, point this script at the files, and it emits a single
self-contained HTML page — inline SVG, no JavaScript, no external assets
— with one section per bench:

  * a run table (artifact file, git_sha, knobs, total seconds),
  * a sparkline per runtime metric (ns_per_iter, *_ms_mean, load_ms*,
    batch sweep times) across the artifact sequence, annotated with the
    first/last values and the relative change,
  * the block decode/skip counters, highlighted red if the latest run
    skipped zero blocks where an earlier one skipped some (the same
    collapse scripts/compare_bench_json.py fails a PR for).

Artifacts are ordered by file name; name the files so lexical order is
chronological (the CI artifact names embed the commit, so prefixing a
date or an incrementing run number when downloading is enough).

Usage:
    bench_dashboard.py [--out dashboard.html] [ARTIFACT.json ...]

With no artifacts listed, every BENCH_*.json under the current
directory (recursively) is used. Stdlib only — runs anywhere CI or a
laptop has Python 3.
"""

import argparse
import glob
import html
import json
import sys

# Flattened-key suffixes/names treated as runtime metrics worth a
# sparkline (mirrors scripts/compare_bench_json.py's RUNTIME_KEYS).
RUNTIME_KEYS = {"ns_per_iter", "load_ms", "load_ms_warm", "batched_cold_ms",
                "sequential_cold_ms", "batched_ms", "sequential_ms"}
RUNTIME_SUFFIXES = ("_ms_mean",)
COUNTER_KEYS = {"blocks_decoded", "blocks_skipped"}

KNOB_KEYS = ("git_sha", "threads", "cache_budget_mb", "scale", "batch_mode")

SPARK_W, SPARK_H = 220, 36


def walk(node, path, out):
    """Flattens numeric leaves into {path: value}, tagging array elements
    by their name/strategy/title/k field so paths are stable across runs
    (same convention as compare_bench_json.py)."""
    if isinstance(node, dict):
        for key, value in node.items():
            walk(value, f"{path}.{key}" if path else key, out)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            segment = str(index)
            if isinstance(value, dict):
                for tag in ("name", "strategy", "title", "group_key", "k"):
                    if tag in value and isinstance(value[tag], (str, int)):
                        segment = f"{tag}={value[tag]}"
                        break
            walk(value, f"{path}[{segment}]", out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[path] = node


def is_runtime_path(path):
    key = path.rsplit(".", 1)[-1]
    return key in RUNTIME_KEYS or key.endswith(RUNTIME_SUFFIXES)


def is_counter_path(path):
    return path.rsplit(".", 1)[-1] in COUNTER_KEYS


def sparkline(values):
    """An inline SVG polyline over `values` (None = missing run)."""
    points = [(i, v) for i, v in enumerate(values) if v is not None]
    if not points:
        return ""
    lo = min(v for _, v in points)
    hi = max(v for _, v in points)
    span = (hi - lo) or 1.0
    n = max(len(values) - 1, 1)
    coords = " ".join(
        f"{2 + i * (SPARK_W - 4) / n:.1f},"
        f"{SPARK_H - 4 - (v - lo) * (SPARK_H - 8) / span:.1f}"
        for i, v in points)
    last_x, last_y = coords.rsplit(" ", 1)[-1].split(",")
    return (f'<svg width="{SPARK_W}" height="{SPARK_H}" '
            f'viewBox="0 0 {SPARK_W} {SPARK_H}">'
            f'<polyline fill="none" stroke="#3465a4" stroke-width="1.5" '
            f'points="{coords}"/>'
            f'<circle cx="{last_x}" cy="{last_y}" r="2.5" fill="#3465a4"/>'
            f'</svg>')


def fmt(value):
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def change_cell(values):
    """first → last relative change, red when slower, green when faster."""
    points = [v for v in values if v is not None]
    if len(points) < 2 or points[0] == 0:
        return "<td></td>"
    ratio = points[-1] / points[0]
    color = "#a40000" if ratio > 1.05 else ("#4e9a06" if ratio < 0.95
                                            else "#555")
    return f'<td style="color:{color}">{(ratio - 1) * 100:+.1f}%</td>'


def render_bench(name, runs):
    """One bench's section: run table + metric sparklines + counters."""
    out = [f"<h2>{html.escape(name)}</h2>"]

    out.append("<table><tr><th>artifact</th>"
               + "".join(f"<th>{k}</th>" for k in KNOB_KEYS)
               + "<th>total_s</th></tr>")
    for path, doc, _ in runs:
        cells = "".join(
            f"<td>{html.escape(fmt(doc.get(k)))}</td>" for k in KNOB_KEYS)
        out.append(f"<tr><td>{html.escape(path)}</td>{cells}"
                   f"<td>{fmt(doc.get('total_seconds'))}</td></tr>")
    out.append("</table>")

    paths = sorted({p for _, _, flat in runs for p in flat})
    runtime_paths = [p for p in paths if is_runtime_path(p)]
    counter_paths = [p for p in paths if is_counter_path(p)]

    if runtime_paths:
        out.append("<table><tr><th>metric</th><th>trajectory</th>"
                   "<th>first</th><th>last</th><th>Δ</th></tr>")
        for p in runtime_paths:
            values = [flat.get(p) for _, _, flat in runs]
            present = [v for v in values if v is not None]
            out.append(f"<tr><td><code>{html.escape(p)}</code></td>"
                       f"<td>{sparkline(values)}</td>"
                       f"<td>{fmt(present[0])}</td>"
                       f"<td>{fmt(present[-1])}</td>"
                       f"{change_cell(values)}</tr>")
        out.append("</table>")

    if counter_paths:
        out.append("<h3>Block decode/skip counters</h3>")
        out.append("<table><tr><th>counter</th><th>trajectory</th>"
                   "<th>latest</th></tr>")
        for p in counter_paths:
            values = [flat.get(p) for _, _, flat in runs]
            present = [v for v in values if v is not None]
            latest = present[-1]
            collapsed = (p.endswith("blocks_skipped") and latest == 0
                         and any(v for v in present))
            style = ' style="color:#a40000;font-weight:bold"' if collapsed \
                else ""
            note = " (skipping collapsed to zero!)" if collapsed else ""
            out.append(f"<tr><td><code>{html.escape(p)}</code></td>"
                       f"<td>{sparkline(values)}</td>"
                       f"<td{style}>{fmt(latest)}{note}</td></tr>")
        out.append("</table>")
    return "\n".join(out)


def render(groups):
    sections = "\n".join(render_bench(name, runs)
                         for name, runs in sorted(groups.items()))
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>Spec-QP bench trajectory</title>
<style>
body {{ font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 72em; color: #222; }}
table {{ border-collapse: collapse; margin: 0.8em 0 1.6em; }}
th, td {{ border: 1px solid #ccc; padding: 3px 9px; text-align: left; }}
th {{ background: #f4f4f4; }}
code {{ font-size: 12px; }}
</style></head><body>
<h1>Spec-QP bench trajectory</h1>
<p>Rendered from archived <code>BENCH_*.json</code> artifacts by
<code>scripts/bench_dashboard.py</code>; runs are ordered by file name.
See <code>docs/BENCHMARKS.md</code> for the artifact schema.</p>
{sections}
</body></html>
"""


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="*",
                        help="BENCH_*.json files (default: **/BENCH_*.json)")
    parser.add_argument("--out", default="dashboard.html",
                        help="output HTML path (default: dashboard.html)")
    args = parser.parse_args()

    files = args.artifacts or sorted(glob.glob("**/BENCH_*.json",
                                               recursive=True))
    if not files:
        print("no BENCH_*.json artifacts found", file=sys.stderr)
        return 1

    groups = {}
    for path in sorted(files):
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"skipping {path}: {err}", file=sys.stderr)
            continue
        flat = {}
        walk(doc, "", flat)
        groups.setdefault(doc.get("bench", "unknown"), []).append(
            (path, doc, flat))
    if not groups:
        print("no readable artifacts", file=sys.stderr)
        return 1

    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(render(groups))
    runs = sum(len(r) for r in groups.values())
    print(f"wrote {args.out}: {len(groups)} bench(es), {runs} run(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
