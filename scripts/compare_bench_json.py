#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts (schema v2) and fail on regressions.

Usage:
    compare_bench_json.py BASE.json HEAD.json [--max-regression 0.20]
    compare_bench_json.py --self-test

The two artifacts must be comparable: same bench, schema version, and the
knobs docs/BENCHMARKS.md says must be held fixed (threads, cache budget,
batch mode). Mismatched knobs exit with code 2 — that is an operator
error, not a perf verdict.

Regression rules (exit 1 on any hit):
  * runtime metrics (``ns_per_iter``, ``load_ms``/``load_ms_warm``,
    ``*_ms_mean``, ``batched_cold_ms``/``sequential_cold_ms``) may not
    grow by more than ``--max-regression`` (default 20%) relative to base;
    metrics below a noise floor are skipped,
  * answer counts (``*_answers``, ``answer_count`` fields) must not
    change at all and ``answers_match`` flags must not flip — answers
    are deterministic, so any change is a correctness regression, not
    noise,
  * ``blocks_skipped`` counters must not regress to zero where the base
    skipped at least one block — skipping is deterministic for a fixed
    workload, so a collapse to zero means a change severed the max-score/
    skip path (e.g. an operator stopped consulting block headers), even
    if runtimes still look fine,
  * vacuous racing: if the head artifact raced plans at all (summed
    ``plans_raced`` > 0) but the runner-up never won a single race
    (summed ``race_wins_by_runnerup`` == 0), the gate fails — a race the
    runner-up cannot win is pure overhead, which means either the
    certificate gate is broken (never certifies) or the race scenario
    stopped exercising planner mistakes,
  * fault-free consistency: a head artifact produced without a
    ``fault_plan`` must report zero ``store_faults``, ``shards_failed``,
    and shed counters everywhere — a healthy run that degrades or sheds
    is broken serving, not perf noise. Artifacts also only compare when
    their ``fault_plan`` / ``degraded_reads`` knobs agree (injection
    perturbs runtimes and answer counts by design).

``--self-test`` builds a synthetic artifact pair, injects a 30% runtime
regression and an answer-count drop, and asserts the comparison fails —
the CI job runs it on every push so the gate itself is exercised.
"""

import argparse
import copy
import json
import sys

RUNTIME_KEYS = {"ns_per_iter", "load_ms", "load_ms_warm", "batched_cold_ms",
                "sequential_cold_ms", "batched_ms", "sequential_ms"}
RUNTIME_SUFFIXES = ("_ms_mean",)
# Noise floors: metrics whose base value is below the floor are too small
# to compare relatively (a single scheduler hiccup flips them).
RUNTIME_FLOORS = {"ns_per_iter": 100.0}
DEFAULT_RUNTIME_FLOOR = 0.5  # milliseconds-scale keys

ANSWER_KEYS = {"answer_count", "true_answer_count"}
ANSWER_SUFFIXES = ("_answers",)
MATCH_KEYS = {"answers_match"}

# Counters that must stay non-zero wherever the base artifact had them
# non-zero: block skipping is deterministic for a fixed workload and
# configuration, so a base that skipped blocks and a head that skips none
# means the skip path itself broke, not that the data shifted.
NONZERO_KEYS = {"blocks_skipped"}

# Knobs that must be identical for two artifacts to be comparable
# (docs/BENCHMARKS.md "knobs held fixed across runs"). `scale` is the
# dataset scale tier; `shard_count` the SQPBNDL1 bundle fan-out (an N-shard
# open pays an N-way merge, so bundle rows only compare at equal N); the
# `admission_*` knobs shape the Submit-driven batch windows — runs at
# different tiers or window shapes are different workloads, not perf
# signals.
COMPARABILITY_KEYS = ("bench", "schema_version", "threads", "cache_budget_mb",
                      "batch_mode", "scale", "shard_count",
                      "admission_max_batch", "admission_max_delay_ms",
                      "speculate_threshold", "calibration_path",
                      "fault_plan", "degraded_reads")

# Counters that must be zero everywhere in an artifact produced WITHOUT a
# fault plan: a healthy run that reports store faults, failed shards, or
# shed requests is leaking failure handling into the fast path (or the
# store under the bench is genuinely broken) — either way the numbers are
# not perf signal.
FAULT_ARTIFACT_KEYS = {"store_faults", "shards_failed", "shed_queue_full",
                       "shed_deadline"}


def is_runtime_key(key):
    return key in RUNTIME_KEYS or key.endswith(RUNTIME_SUFFIXES)


def is_answer_key(key):
    return key in ANSWER_KEYS or key.endswith(ANSWER_SUFFIXES)


def walk(node, path, out):
    """Flattens numeric/bool leaves into {path: value}.

    Array elements carrying a "name"/"strategy"/"title" field use it as the
    path segment, so metrics match across runs even if ordering changes.
    """
    if isinstance(node, dict):
        for key, value in node.items():
            walk(value, f"{path}.{key}" if path else key, out)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            segment = str(index)
            if isinstance(value, dict):
                for tag in ("name", "strategy", "title", "group_key", "k"):
                    if tag in value and isinstance(value[tag], (str, int)):
                        segment = f"{tag}={value[tag]}"
                        break
            walk(value, f"{path}[{segment}]", out)
    elif isinstance(node, (int, float, bool)) and not isinstance(node, str):
        out[path] = node


def compare(base_doc, head_doc, max_regression):
    """Returns (errors, notes). Non-empty errors means the gate fails."""
    errors = []
    notes = []
    for key in COMPARABILITY_KEYS:
        base_value = base_doc.get(key)
        head_value = head_doc.get(key)
        # A knob absent on one side is an older artifact schema, not a
        # configuration mismatch; only present-on-both knobs must agree.
        if base_value is None or head_value is None:
            continue
        if base_value != head_value:
            return ([f"artifacts not comparable: {key} differs "
                     f"(base={base_value!r}, head={head_value!r})"], [],
                    True)

    base = {}
    head = {}
    walk(base_doc, "", base)
    walk(head_doc, "", head)

    for path, base_value in sorted(base.items()):
        if path not in head:
            notes.append(f"missing in head: {path}")
            continue
        head_value = head[path]
        key = path.rsplit(".", 1)[-1]
        if key in MATCH_KEYS:
            if base_value is True and head_value is not True:
                errors.append(f"{path}: answers_match flipped to false")
        elif is_answer_key(key):
            # Answers are deterministic: ANY change (not just a decrease)
            # is a correctness regression, never noise.
            if head_value != base_value:
                errors.append(f"{path}: answer count changed "
                              f"{base_value} -> {head_value}")
        elif key in NONZERO_KEYS:
            if base_value > 0 and head_value == 0:
                errors.append(f"{path}: block skipping regressed to zero "
                              f"(base skipped {base_value})")
        elif is_runtime_key(key):
            floor = RUNTIME_FLOORS.get(key, DEFAULT_RUNTIME_FLOOR)
            if not isinstance(base_value, (int, float)) or base_value < floor:
                continue
            ratio = head_value / base_value
            if ratio > 1.0 + max_regression:
                errors.append(f"{path}: runtime regressed {ratio:.2f}x "
                              f"({base_value:.3g} -> {head_value:.3g})")
            elif ratio < 1.0 - max_regression:
                notes.append(f"{path}: improved {1.0 / ratio:.2f}x")

    # Vacuous racing: a head that launches races the runner-up can never
    # win burns speculative work for nothing. Summed over every
    # plans_raced/race_wins_by_runnerup leaf of the head artifact alone (a
    # self-consistency check, not a base-vs-head delta).
    raced = sum(v for p, v in head.items()
                if p.rsplit(".", 1)[-1] == "plans_raced")
    runner_up_wins = sum(v for p, v in head.items()
                         if p.rsplit(".", 1)[-1] == "race_wins_by_runnerup")
    if raced > 0 and runner_up_wins == 0:
        errors.append(f"vacuous racing: head raced {raced} plans but the "
                      "runner-up won 0 races")

    # No-fault artifacts must be fault-free: with an empty fault plan the
    # degraded-read and shedding machinery must never have engaged (another
    # head-only self-consistency check).
    if not head_doc.get("fault_plan"):
        for counter in sorted(FAULT_ARTIFACT_KEYS):
            # A "fault_scenarios" subtree is a deliberate injected-failure
            # measurement (micro_store_load) — exempt by construction.
            total = sum(v for p, v in head.items()
                        if p.rsplit(".", 1)[-1] == counter
                        and "fault_scenarios" not in p)
            if total > 0:
                errors.append(f"fault-free artifact reports {counter}="
                              f"{total}; a run without a fault plan must "
                              "not degrade or shed")
    return errors, notes, False


def self_test():
    base = {
        "bench": "micro_operators",
        "schema_version": 2,
        "git_sha": "base000",
        "threads": 2,
        "cache_budget_mb": 64,
        "batch_mode": False,
        "scale": 1,
        "shard_count": 4,
        "admission_max_batch": 16,
        "admission_max_delay_ms": 2.0,
        "benchmarks": [
            {"name": "rank_join_topk/k:10", "ns_per_iter": 1000.0},
            {"name": "pattern_scan_drain", "ns_per_iter": 50.0},  # < floor
        ],
        "by_k": [{"k": 10, "groups": [
            {"group_key": 2, "trinit_ms_mean": 10.0, "spec_ms_mean": 5.0,
             "trinit_answers": 40, "spec_answers": 40},
        ]}],
        "block_skipping": {"blocks_decoded": 2, "blocks_skipped": 948},
        "speculate_threshold": 2.0,
        "calibration_path": "",
        "fault_plan": "",
        "degraded_reads": False,
        "plan_race": {"plans_raced": 80, "race_wins_by_runnerup": 17,
                      "speculative_work_wasted_rows": 1200},
        "loads": [{"name": "bundle_mmap_lazy", "load_ms": 12.0,
                   "store_faults": 0, "shards_failed": 0,
                   "shards_total": 4}],
    }

    # Identical artifacts pass.
    errors, _, _ = compare(base, copy.deepcopy(base), 0.20)
    assert not errors, f"identical artifacts must pass: {errors}"

    # Within-tolerance jitter passes; the sub-floor metric never trips.
    jitter = copy.deepcopy(base)
    jitter["git_sha"] = "head000"
    jitter["benchmarks"][0]["ns_per_iter"] = 1100.0
    jitter["benchmarks"][1]["ns_per_iter"] = 500.0  # 10x but below floor
    errors, _, _ = compare(base, jitter, 0.20)
    assert not errors, f"10% jitter must pass: {errors}"

    # Injected 30% runtime regression fails.
    slow = copy.deepcopy(base)
    slow["benchmarks"][0]["ns_per_iter"] = 1300.0
    errors, _, _ = compare(base, slow, 0.20)
    assert any("runtime regressed" in e for e in errors), \
        f"30% regression must fail, got: {errors}"

    # Any answer-count change fails even with identical runtimes —
    # answers are deterministic, so extra (wrong) rows are as much a
    # regression as missing ones.
    for changed_count in (39, 45):
        changed = copy.deepcopy(base)
        changed["by_k"][0]["groups"][0]["spec_answers"] = changed_count
        errors, _, _ = compare(base, changed, 0.20)
        assert any("answer count changed" in e for e in errors), \
            f"answer-count change to {changed_count} must fail, got: {errors}"

    # blocks_skipped collapsing to zero fails even with identical runtimes
    # (a severed skip path costs decode work, not necessarily wall time on
    # a warm memo); a mere decrease stays a pass — skip counts shift
    # legitimately with plan changes.
    no_skip = copy.deepcopy(base)
    no_skip["block_skipping"]["blocks_skipped"] = 0
    errors, _, _ = compare(base, no_skip, 0.20)
    assert any("block skipping regressed to zero" in e for e in errors), \
        f"skip collapse must fail, got: {errors}"
    fewer_skips = copy.deepcopy(base)
    fewer_skips["block_skipping"]["blocks_skipped"] = 500
    errors, _, _ = compare(base, fewer_skips, 0.20)
    assert not errors, f"reduced-but-nonzero skips must pass: {errors}"

    # Vacuous racing in the head fails even against an identical base: a
    # race the runner-up never wins is overhead with no payoff (broken
    # certificate gate or a dead race scenario). Zero races stay fine —
    # speculation off is a legitimate configuration.
    vacuous = copy.deepcopy(base)
    vacuous["plan_race"]["race_wins_by_runnerup"] = 0
    errors, _, _ = compare(vacuous, vacuous, 0.20)
    assert any("vacuous racing" in e for e in errors), \
        f"raced>0 with 0 runner-up wins must fail, got: {errors}"
    no_racing = copy.deepcopy(base)
    no_racing["plan_race"]["plans_raced"] = 0
    no_racing["plan_race"]["race_wins_by_runnerup"] = 0
    errors, _, _ = compare(no_racing, no_racing, 0.20)
    assert not errors, f"speculation-off artifacts must pass: {errors}"

    # Mismatched knobs are an operator error (exit 2 path) — including the
    # scale tier, the admission-window knobs, and the speculation /
    # calibration configuration (racing changes the work profile, a
    # correction table changes every estimate).
    for knob, other_value in (("threads", 8), ("scale", 10),
                              ("shard_count", 8),
                              ("admission_max_batch", 1),
                              ("admission_max_delay_ms", 0.0),
                              ("speculate_threshold", 0.0),
                              ("calibration_path", "corrections.tsv"),
                              ("fault_plan", "seed=7;shard.read=0.01"),
                              ("degraded_reads", True)):
        other_knobs = copy.deepcopy(base)
        other_knobs[knob] = other_value
        errors, _, not_comparable = compare(base, other_knobs, 0.20)
        assert not_comparable and errors, \
            f"{knob} mismatch must be flagged, got: {errors}"

    # A no-fault artifact that reports failure handling fails even with
    # identical runtimes and answers: degraded or shed responses in a
    # healthy run mean the serving path is broken, not slow. The same
    # numbers under a declared fault plan are expected output.
    leaky = copy.deepcopy(base)
    leaky["loads"][0]["shards_failed"] = 1
    errors, _, _ = compare(base, leaky, 0.20)
    assert any("fault-free artifact" in e for e in errors), \
        f"no-fault artifact with failed shards must fail, got: {errors}"
    shed = copy.deepcopy(base)
    shed["admission"] = {"shed_queue_full": 3}
    errors, _, _ = compare(base, shed, 0.20)
    assert any("shed_queue_full" in e for e in errors), \
        f"no-fault artifact with shed requests must fail, got: {errors}"
    fenced = copy.deepcopy(base)
    fenced["fault_scenarios"] = {
        "degraded": {"shards_failed": 1, "shards_total": 4,
                     "first_query_ms": 3.0}}
    errors, _, _ = compare(base, fenced, 0.20)
    assert not errors, \
        f"fenced fault_scenarios subtree must stay exempt: {errors}"
    chaos_base = copy.deepcopy(base)
    chaos_base["fault_plan"] = "seed=7;shard.open=1"
    chaos_head = copy.deepcopy(chaos_base)
    chaos_head["loads"][0]["shards_failed"] = 1
    chaos_head["loads"][0]["store_faults"] = 2
    errors, _, not_comparable = compare(chaos_base, chaos_head, 0.20)
    assert not errors and not not_comparable, \
        f"declared fault plan may report faults: {errors}"

    # A knob absent on one side (older artifact schema) stays comparable.
    legacy = copy.deepcopy(base)
    for knob in ("scale", "shard_count", "admission_max_batch",
                 "admission_max_delay_ms", "speculate_threshold",
                 "calibration_path"):
        del legacy[knob]
    del legacy["plan_race"]
    errors, _, not_comparable = compare(legacy, base, 0.20)
    assert not errors and not not_comparable, \
        f"absent knobs must stay comparable: {errors}"

    print("self-test OK: gate passes identical/jittered artifacts, fails on "
          "injected runtime, answer-count, skip-collapse, vacuous-racing, "
          "and fault-leak regressions, rejects mismatched knobs (incl. "
          "scale, shard count, admission window, speculation/calibration, "
          "and fault plan)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("base", nargs="?", help="base BENCH_*.json")
    parser.add_argument("head", nargs="?", help="head BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed relative runtime growth (default 0.20)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on synthetic regressions")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.base or not args.head:
        parser.error("BASE and HEAD artifacts are required (or --self-test)")

    with open(args.base, encoding="utf-8") as f:
        base_doc = json.load(f)
    with open(args.head, encoding="utf-8") as f:
        head_doc = json.load(f)

    errors, notes, not_comparable = compare(base_doc, head_doc,
                                            args.max_regression)
    base_sha = base_doc.get("git_sha", "unknown")
    head_sha = head_doc.get("git_sha", "unknown")
    print(f"comparing {base_doc.get('bench')} artifacts: "
          f"base {base_sha} vs head {head_sha}")
    for note in notes:
        print(f"  note: {note}")
    if not_comparable:
        print(f"ERROR: {errors[0]}", file=sys.stderr)
        return 2
    if errors:
        for error in errors:
            print(f"REGRESSION: {error}", file=sys.stderr)
        print(f"{len(errors)} regression(s) beyond "
              f"{args.max_regression:.0%} tolerance", file=sys.stderr)
        return 1
    print("no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
