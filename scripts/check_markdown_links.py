#!/usr/bin/env python3
"""Fails when an intra-repo markdown link points at a missing file.

Checks every [text](target) and [text](target#anchor) link in the given
markdown files (default: README.md, ROADMAP.md, CHANGES.md, docs/*.md)
against the working tree. External links (scheme://, mailto:) are
ignored; anchors are checked for existence of the file only, not the
heading. Exit code 1 lists every broken link.

Usage: scripts/check_markdown_links.py [file.md ...]
"""

import glob
import os
import re
import sys

# [text](target) — skips images' leading '!' implicitly (the pattern
# matches those too, which is fine: image targets must also exist).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

IGNORED_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def check_file(md_path: str) -> list[str]:
    errors = []
    base_dir = os.path.dirname(os.path.abspath(md_path))
    with open(md_path, encoding="utf-8") as fh:
        text = fh.read()
    # Strip fenced code blocks: CLI examples often contain bracketed
    # usage strings like [--json <path>] that are not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(IGNORED_PREFIXES):
            continue
        path = target.split("#", 1)[0]
        if not path:  # pure in-page anchor
            continue
        resolved = os.path.normpath(os.path.join(base_dir, path))
        if not os.path.exists(resolved):
            errors.append(f"{md_path}: broken link '{target}' "
                          f"(resolved to {os.path.relpath(resolved)})")
    return errors


def main(argv: list[str]) -> int:
    files = argv[1:]
    if not files:
        files = ["README.md", "ROADMAP.md", "CHANGES.md"]
        files += sorted(glob.glob("docs/*.md"))
    files = [f for f in files if os.path.exists(f)]
    all_errors = []
    for md_path in files:
        all_errors += check_file(md_path)
    for error in all_errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): "
          f"{'OK' if not all_errors else f'{len(all_errors)} broken link(s)'}")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
