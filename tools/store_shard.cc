// store_shard: offline builder of sharded store bundles (SQPBNDL1).
//
// Two modes:
//
//   --input <store file>   shard an existing SQPSTOR1/2/3 file
//   --dataset xkg|twitter  generate a synthetic dataset directly into
//                          shards, streamed: each shard task re-runs the
//                          deterministic generator pass and keeps only the
//                          triples hashing to its shard, so the full graph
//                          never exists in memory — peak memory is the
//                          dictionary plus one shard's triples per worker.
//                          This is what makes --scale 100 buildable on a
//                          laptop.
//
// Shard files are built in parallel on a ThreadPool (--threads) and
// streamed to disk; the manifest is written last, sealing the bundle. The
// result opens through the stock Engine::OpenFromPath.
//
//   store_shard --dataset xkg --scale 100 --shards 8 --out /data/xkg100
//   store_shard --input twitter.sqps --shards 4 --scheme predicate
//               --out /data/twitter4

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <system_error>
#include <vector>

#include "datasets/twitter_generator.h"
#include "datasets/xkg_generator.h"
#include "rdf/sharded_store.h"
#include "rdf/store_io.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace specqp {
namespace {

struct ToolOptions {
  std::string input;
  std::string dataset;
  std::string out;
  uint32_t shards = 4;
  size_t scale = 1;
  uint64_t seed = 0;  // 0 = the dataset's default seed
  bundle::HashScheme scheme = bundle::HashScheme::kSubject;
  uint32_t format_version = 3;
  size_t threads = 0;  // 0 = hardware concurrency
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--input FILE | --dataset xkg|twitter) --out DIR\n"
      "          [--shards N] [--scale N] [--seed N]\n"
      "          [--scheme subject|predicate] [--format 2|3] [--threads N]\n",
      argv0);
  return 2;
}

bool ParseUint(const char* text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = parsed;
  return true;
}

// One streamed generator pass per shard: full dictionary, only the
// triples hashing to `shard`.
Status BuildGeneratedShard(const ToolOptions& options, uint32_t shard) {
  TripleStore store;
  uint64_t kept = 0;
  uint64_t seen = 0;
  auto sink = [&](TermId s, TermId p, TermId o, double score) {
    ++seen;
    const Triple t{s, p, o, score};
    if (BundleShardOfTriple(t, options.scheme, options.shards) != shard) {
      return;
    }
    ++kept;
    store.AddEncoded(s, p, o, score);
  };
  if (options.dataset == "xkg") {
    XkgConfig config;
    config.scale = options.scale;
    if (options.seed != 0) config.seed = options.seed;
    StreamXkgTriples(config, &store.dict(), sink);
  } else {
    TwitterConfig config;
    config.scale = options.scale;
    if (options.seed != 0) config.seed = options.seed;
    StreamTwitterTriples(config, &store.dict(), sink);
  }
  store.Finalize();

  SaveStoreOptions save;
  save.format_version = options.format_version;
  const std::string path =
      options.out + "/" + BundleShardFileName(shard);
  SPECQP_RETURN_IF_ERROR(SaveStore(store, path, save));
  std::fprintf(stderr, "  shard %u: kept %llu of %llu emitted -> %s\n",
               shard, static_cast<unsigned long long>(kept),
               static_cast<unsigned long long>(seen), path.c_str());
  return Status::Ok();
}

int Run(const ToolOptions& options) {
  const size_t workers =
      options.threads > 0 ? options.threads : ThreadPool::HardwareConcurrency();
  WallTimer timer;
  Status status;

  if (!options.input.empty()) {
    auto loaded = LoadStore(options.input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "store_shard: cannot load %s: %s\n",
                   options.input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    ThreadPool pool(workers > 0 ? workers - 1 : 0);
    ShardBundleOptions bundle_options;
    bundle_options.shard_count = options.shards;
    bundle_options.scheme = options.scheme;
    bundle_options.format_version = options.format_version;
    bundle_options.pool = &pool;
    status = WriteShardBundle(loaded.value(), options.out, bundle_options);
  } else {
    std::error_code ec;
    std::filesystem::create_directories(options.out, ec);
    if (ec) {
      std::fprintf(stderr, "store_shard: cannot create %s\n",
                   options.out.c_str());
      return 1;
    }
    // One generator pass per shard, parallel across shards. Each pass is
    // deterministic in the seed, so every pass emits the identical stream
    // and the per-shard filters partition it exactly.
    ThreadPool pool(workers > 0 ? workers - 1 : 0);
    std::vector<Status> statuses(options.shards);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(options.shards);
    for (uint32_t shard = 0; shard < options.shards; ++shard) {
      tasks.push_back([&options, &statuses, shard] {
        statuses[shard] = BuildGeneratedShard(options, shard);
      });
    }
    pool.RunAndWait(&tasks);
    for (const Status& s : statuses) {
      if (!s.ok() && status.ok()) status = s;
    }
    if (status.ok()) {
      status = WriteBundleManifest(options.out, options.shards,
                                   options.scheme, options.format_version);
    }
  }

  if (!status.ok()) {
    std::fprintf(stderr, "store_shard: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "store_shard: wrote %u-shard bundle to %s in %.1f ms\n",
               options.shards, options.out.c_str(), timer.ElapsedMillis());
  return 0;
}

}  // namespace
}  // namespace specqp

int main(int argc, char** argv) {
  specqp::ToolOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    uint64_t value = 0;
    if (arg == "--input") {
      const char* v = next();
      if (v == nullptr) return specqp::Usage(argv[0]);
      options.input = v;
    } else if (arg == "--dataset") {
      const char* v = next();
      if (v == nullptr ||
          (std::strcmp(v, "xkg") != 0 && std::strcmp(v, "twitter") != 0)) {
        return specqp::Usage(argv[0]);
      }
      options.dataset = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return specqp::Usage(argv[0]);
      options.out = v;
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr || !specqp::ParseUint(v, &value) || value == 0 ||
          value > specqp::bundle::kMaxShards) {
        return specqp::Usage(argv[0]);
      }
      options.shards = static_cast<uint32_t>(value);
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr || !specqp::ParseUint(v, &value) || value == 0) {
        return specqp::Usage(argv[0]);
      }
      options.scale = static_cast<size_t>(value);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !specqp::ParseUint(v, &value)) {
        return specqp::Usage(argv[0]);
      }
      options.seed = value;
    } else if (arg == "--scheme") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "subject") == 0) {
        options.scheme = specqp::bundle::HashScheme::kSubject;
      } else if (v != nullptr && std::strcmp(v, "predicate") == 0) {
        options.scheme = specqp::bundle::HashScheme::kPredicate;
      } else {
        return specqp::Usage(argv[0]);
      }
    } else if (arg == "--format") {
      const char* v = next();
      if (v == nullptr || !specqp::ParseUint(v, &value) ||
          (value != 2 && value != 3)) {
        return specqp::Usage(argv[0]);
      }
      options.format_version = static_cast<uint32_t>(value);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || !specqp::ParseUint(v, &value)) {
        return specqp::Usage(argv[0]);
      }
      options.threads = static_cast<size_t>(value);
    } else {
      return specqp::Usage(argv[0]);
    }
  }
  if (options.out.empty() ||
      (options.input.empty() == options.dataset.empty())) {
    return specqp::Usage(argv[0]);
  }
  return specqp::Run(options);
}
